//! Locating cryptographic keys in (simulated) memory.
//!
//! This crate reimplements the paper's `scanmemory` loadable kernel module
//! (Section 3.1 and the appendix): a linear, O(n) sweep of physical memory
//! for the byte patterns that constitute "a copy of the private key" (d, P,
//! Q, and the PEM file), with each hit attributed to the processes that map
//! the containing page via the reverse mapping, and classified as living in
//! *allocated* or *unallocated* memory.
//!
//! # Examples
//!
//! ```
//! use keyscan::Scanner;
//! use memsim::{Kernel, MachineConfig};
//! use rsa_repro::{material::KeyMaterial, RsaPrivateKey};
//! use simrng::Rng64;
//!
//! let key = RsaPrivateKey::generate(128, &mut Rng64::new(1));
//! let material = KeyMaterial::from_key(&key);
//! let scanner = Scanner::from_material(&material);
//!
//! let mut k = Kernel::new(MachineConfig::small());
//! let pid = k.spawn();
//! let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
//! k.write_bytes(pid, buf, material.d_bytes()).unwrap();
//!
//! let report = scanner.scan_kernel(&k);
//! assert_eq!(report.total(), 1);
//! assert_eq!(report.allocated(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dedup;
mod entropy;
mod incremental;
pub mod reconstruct;

pub use dedup::{dedup_probe, DedupProbe};
pub use entropy::{EntropyRegion, EntropyScanner};
pub use incremental::{IncrementalScanner, ScanStats};

use memsim::{FrameId, FrameState, Kernel, Pid, PAGE_SIZE};
use rsa_repro::material::{KeyMaterial, Pattern};

/// A pattern match in a raw byte dump (no page metadata available).
///
/// Deliberately index-only: a scan over gigabytes used to clone the pattern
/// *name* (`"d"`, `"p"`, …) into every hit, one heap allocation per match.
/// Resolve the label at report/format time via [`Scanner::pattern_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawHit {
    /// Index into the scanner's pattern list.
    pub pattern: usize,
    /// Byte offset of the match start.
    pub offset: usize,
}

/// A full or truncated prefix match found by [`Scanner::scan_bytes_partial`].
/// Index-only like [`RawHit`]; resolve names via [`Scanner::pattern_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialHit {
    /// Index into the scanner's pattern list.
    pub pattern: usize,
    /// Byte offset of the match start.
    pub offset: usize,
    /// How many leading bytes of the pattern matched.
    pub matched_len: usize,
    /// Whether the entire pattern matched.
    pub full: bool,
}

/// A pattern match in simulated physical memory, with page attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyHit {
    /// Index into the scanner's pattern list.
    pub pattern: usize,
    /// Pattern name.
    pub name: String,
    /// Physical byte offset of the match start.
    pub offset: usize,
    /// Frame containing the match start.
    pub frame: FrameId,
    /// State of that frame.
    pub state: FrameState,
    /// Whether the frame counts as allocated memory (process, kernel, or
    /// page cache) rather than free-list memory.
    pub allocated: bool,
    /// Processes mapping the frame (the paper's `printOwningProcesses`).
    pub owners: Vec<Pid>,
}

/// Aggregated scan results for one snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    hits: Vec<KeyHit>,
    num_patterns: usize,
}

impl ScanReport {
    /// All hits, in ascending physical order.
    #[must_use]
    pub fn hits(&self) -> &[KeyHit] {
        &self.hits
    }

    /// Total number of key copies found.
    #[must_use]
    pub fn total(&self) -> usize {
        self.hits.len()
    }

    /// Copies found in allocated memory.
    #[must_use]
    pub fn allocated(&self) -> usize {
        self.hits.iter().filter(|h| h.allocated).count()
    }

    /// Copies found in unallocated (free-list) memory.
    #[must_use]
    pub fn unallocated(&self) -> usize {
        self.hits.iter().filter(|h| !h.allocated).count()
    }

    /// Hit counts per pattern index.
    #[must_use]
    pub fn by_pattern(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_patterns];
        for h in &self.hits {
            counts[h.pattern] += 1;
        }
        counts
    }

    /// `(physical_offset, allocated)` pairs — the data behind the paper's
    /// "locations of keys in memory" scatter plots (Figures 5a, 6a, 9…27).
    #[must_use]
    pub fn locations(&self) -> Vec<(usize, bool)> {
        self.hits.iter().map(|h| (h.offset, h.allocated)).collect()
    }

    /// Whether any full copy of the key was found at all.
    #[must_use]
    pub fn compromised(&self) -> bool {
        !self.hits.is_empty()
    }
}

/// The change between two scans of the same machine — how the paper's
/// timeline observations (copies appearing under load, migrating from
/// allocated to unallocated at process exit) are detected mechanically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanDiff {
    /// Copies present only in the later scan.
    pub appeared: Vec<KeyHit>,
    /// Copies present only in the earlier scan.
    pub disappeared: Vec<KeyHit>,
    /// Copies at the same location whose allocation state flipped,
    /// `(earlier, later)` — observation (4) of Figure 5 is exactly a wave of
    /// allocated→unallocated entries here.
    pub reclassified: Vec<(KeyHit, KeyHit)>,
}

impl ScanDiff {
    /// Whether nothing changed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.disappeared.is_empty() && self.reclassified.is_empty()
    }

    /// Number of copies that moved from allocated to unallocated.
    #[must_use]
    pub fn freed_in_place(&self) -> usize {
        self.reclassified
            .iter()
            .filter(|(before, after)| before.allocated && !after.allocated)
            .count()
    }
}

impl ScanReport {
    /// Diffs this (earlier) report against a `later` one. Hits are matched
    /// by `(pattern, physical offset)`.
    #[must_use]
    pub fn diff(&self, later: &ScanReport) -> ScanDiff {
        use std::collections::HashMap;
        let key = |h: &KeyHit| (h.pattern, h.offset);
        let earlier: HashMap<_, &KeyHit> = self.hits.iter().map(|h| (key(h), h)).collect();
        let later_map: HashMap<_, &KeyHit> = later.hits.iter().map(|h| (key(h), h)).collect();

        let mut diff = ScanDiff::default();
        for h in &later.hits {
            match earlier.get(&key(h)) {
                None => diff.appeared.push(h.clone()),
                Some(old) if old.allocated != h.allocated => {
                    diff.reclassified.push(((*old).clone(), h.clone()));
                }
                Some(_) => {}
            }
        }
        for h in &self.hits {
            if !later_map.contains_key(&key(h)) {
                diff.disappeared.push(h.clone());
            }
        }
        diff
    }
}

/// Multi-pattern linear memory scanner.
///
/// Construction precomputes two match cores over the pattern set and
/// dispatches per scan:
///
/// * **SWAR prefilter** (default when the distinct window-end byte count is
///   small): a `u64`-at-a-time broadcast-compare filter. Each 8-byte word of
///   the haystack is XORed against every broadcast trigger byte; a zero byte
///   lane marks a candidate position, which is handed to the exact verifier.
///   64-byte blocks are first OR-reduced so all-zero memory — the dominant
///   content of simulated physical memory — is rejected eight bytes per
///   instruction without per-trigger work.
/// * **Boyer–Moore–Horspool skip walk** (fallback for large trigger sets):
///   a bad-character shift table (block size 1, window = the shortest
///   pattern length); the loop examines the byte at the *end* of the current
///   window and either skips ahead by its shift or — when the byte can
///   terminate a window (`shift == 0`, a "trigger" byte) — verifies the few
///   candidate patterns whose window-end byte it is. When every pattern
///   shares one trigger byte this degenerates to a plain `position()` search
///   (the `memchr` idiom).
///
/// Both cores feed the same exact verifier and emit hits in identical order
/// (ascending offset, ties in ascending pattern order), so every scan result
/// is bit-identical regardless of dispatch. Worst case stays O(n·k) like the
/// paper's LKM; the common case rejects most of memory a word at a time.
// keylint: allow(S003) -- the patterns vector drops its elements and each Pattern zeroes its own bytes; the shift/tail/trigger tables hold only byte-frequency structure, single window-end byte values, and pattern indices, not key bytes
pub struct Scanner {
    patterns: Vec<Pattern>,
    /// Window length: the shortest pattern length (>= 8 by `Pattern::new`).
    window: usize,
    /// Bad-character shift per byte value. `shift[c] == 0` marks a trigger
    /// byte (`c` is some pattern's byte at position `window - 1`).
    shift: Vec<usize>,
    /// For each trigger byte, the patterns whose `window - 1` byte it is —
    /// the only candidates that can match at the current alignment.
    tail: Vec<Vec<u32>>,
    /// When every pattern has the same window-end byte, that byte.
    single_trigger: Option<u8>,
    /// Each distinct trigger byte broadcast into all eight `u64` lanes —
    /// the SWAR prefilter's compare operands, precomputed once.
    trigger_splats: Vec<u64>,
    /// Whether `0x00` is *not* a trigger byte, enabling the all-zero
    /// 64-byte-block fast reject in the SWAR core.
    swar_zero_skip: bool,
    /// Longest pattern length (straddle width for windowed scans).
    max_len: usize,
}

/// SWAR block width in bytes: one cache line, OR-reduced per iteration for
/// the all-zero fast reject before per-word trigger comparison.
const SWAR_BLOCK: usize = 64;

/// Above this many distinct trigger bytes the per-word SWAR compare chain
/// costs more than the Horspool skip walk, so `for_each_match` falls back.
const SWAR_MAX_TRIGGERS: usize = 8;

/// Broadcasts a byte into all eight lanes of a `u64`.
const fn splat(b: u8) -> u64 {
    (b as u64) * 0x0101_0101_0101_0101
}

/// Reads the little-endian `u64` at `bytes[i..i + 8]`. Little-endian lane
/// order means `trailing_zeros() / 8` on a lane mask walks ascending memory
/// offsets, preserving the serial hit order.
#[inline]
fn word_at(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte slice"))
}

/// SWAR byte-equality: `0x80` in (at least) every lane of `word` equal to
/// the pre-broadcast trigger `t_splat`. The three-op zero-byte detector can
/// raise spurious `0x80` bits in lanes *above* a genuine match (borrow
/// propagation); that is harmless here because every flagged lane goes
/// through the exact verifier, which checks the real byte — correctness
/// never rests on this mask, only the skip rate does.
#[inline]
fn swar_eq(word: u64, t_splat: u64) -> u64 {
    let x = word ^ t_splat;
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Contiguous, near-equal spans `[start, end)` covering `0..len`, at most
/// `shards` of them (fewer when `len < shards`). Deterministic in `len` and
/// `shards` only, so shard boundaries never depend on thread scheduling.
fn shard_spans(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut spans = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 0..shards {
        let end = start + base + usize::from(i < extra);
        spans.push((start, end));
        start = end;
    }
    spans
}

/// The patterns are the key material being hunted, so `{:?}` stops at a count.
impl core::fmt::Debug for Scanner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let count = self.patterns.len();
        write!(f, "Scanner({count} patterns, <redacted>)")
    }
}

impl Scanner {
    /// Builds a scanner for arbitrary patterns.
    ///
    /// # Panics
    ///
    /// Panics when `patterns` is empty.
    #[must_use]
    pub fn new(patterns: Vec<Pattern>) -> Self {
        assert!(!patterns.is_empty(), "scanner needs at least one pattern");
        let window = patterns.iter().map(|p| p.bytes.len()).min().expect("non-empty");
        let max_len = patterns.iter().map(|p| p.bytes.len()).max().expect("non-empty");
        let mut shift = vec![window; 256];
        for p in &patterns {
            for (j, &b) in p.bytes[..window].iter().enumerate() {
                shift[b as usize] = shift[b as usize].min(window - 1 - j);
            }
        }
        let mut tail = vec![Vec::new(); 256];
        for (i, p) in patterns.iter().enumerate() {
            tail[p.bytes[window - 1] as usize].push(i as u32);
        }
        let first_end = patterns[0].bytes[window - 1];
        let single_trigger = patterns
            .iter()
            .all(|p| p.bytes[window - 1] == first_end)
            .then_some(first_end);
        let trigger_splats: Vec<u64> = tail
            .iter()
            .enumerate()
            .filter(|(_, pis)| !pis.is_empty())
            .map(|(b, _)| splat(b as u8))
            .collect();
        let swar_zero_skip = tail[0].is_empty();
        Self {
            patterns,
            window,
            shift,
            tail,
            single_trigger,
            trigger_splats,
            swar_zero_skip,
            max_len,
        }
    }

    /// Builds the paper's standard scanner over `(d, p, q, pem)`.
    #[must_use]
    pub fn from_material(material: &KeyMaterial) -> Self {
        Self::new(material.patterns().iter().map(Pattern::clone_secret).collect())
    }

    /// The patterns being searched for.
    #[must_use]
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// A fresh scanner over audited copies of the same patterns — the only
    /// way to duplicate one (patterns are deliberately not `Clone`).
    #[must_use]
    pub fn fork(&self) -> Self {
        Self::new(self.patterns.iter().map(Pattern::clone_secret).collect())
    }

    /// Length of the longest pattern — how far a match starting in one page
    /// can reach into the next, i.e. the straddle width windowed scans need.
    #[must_use]
    pub fn max_pattern_len(&self) -> usize {
        self.max_len
    }

    /// The public label of pattern `pi` (`"d"`, `"p"`, `"q"`, `"pem"`).
    /// Hit types carry only the index; resolve names here at report time.
    ///
    /// # Panics
    ///
    /// Panics when `pi` is out of range.
    #[must_use]
    pub fn pattern_name(&self, pi: usize) -> &str {
        &self.patterns[pi].name
    }

    /// The allocation-free matching core every byte-scanning API shares.
    ///
    /// Invokes `on_hit(pattern_index, offset)` for every full match, in
    /// ascending offset order (ties in ascending pattern order). The callback
    /// returns `false` to stop early. Dispatches between the SWAR prefilter
    /// and the Horspool skip walk (see the type docs); both emit the exact
    /// same hit sequence, so callers cannot observe which core ran.
    fn for_each_match(&self, haystack: &[u8], on_hit: impl FnMut(usize, usize) -> bool) {
        if self.trigger_splats.len() <= SWAR_MAX_TRIGGERS {
            self.for_each_match_swar(haystack, on_hit);
        } else {
            self.for_each_match_horspool(haystack, on_hit);
        }
    }

    /// SWAR match core: 64-byte blocks are OR-reduced for the all-zero fast
    /// reject, then each `u64` word is broadcast-compared against every
    /// distinct trigger byte; flagged lanes (ascending, via
    /// `trailing_zeros`) feed the exact verifier.
    fn for_each_match_swar(&self, haystack: &[u8], mut on_hit: impl FnMut(usize, usize) -> bool) {
        let w = self.window;
        let n = haystack.len();
        if n < w {
            return;
        }
        let mut pos = w - 1; // index of the current window's last byte
        while pos + SWAR_BLOCK <= n {
            let block = &haystack[pos..pos + SWAR_BLOCK];
            if self.swar_zero_skip {
                let mut acc = 0u64;
                let mut j = 0;
                while j < SWAR_BLOCK {
                    acc |= word_at(block, j);
                    j += 8;
                }
                if acc == 0 {
                    // No nonzero byte in the block, and 0x00 triggers
                    // nothing: no window can end here.
                    pos += SWAR_BLOCK;
                    continue;
                }
            }
            let mut j = 0;
            while j < SWAR_BLOCK {
                let word = word_at(block, j);
                let mut mask = 0u64;
                for &t in &self.trigger_splats {
                    mask |= swar_eq(word, t);
                }
                while mask != 0 {
                    let lane = (mask.trailing_zeros() / 8) as usize;
                    mask &= mask - 1;
                    let p = pos + j + lane;
                    // `swar_eq` may over-flag; `verify_at` re-reads the real
                    // byte, so a spurious lane just finds an empty bucket.
                    if !self.verify_at(haystack, p + 1 - w, haystack[p], &mut on_hit) {
                        return;
                    }
                }
                j += 8;
            }
            pos += SWAR_BLOCK;
        }
        // Bytewise tail: fewer than SWAR_BLOCK window-end positions remain.
        while pos < n {
            let b = haystack[pos];
            if !self.tail[b as usize].is_empty()
                && !self.verify_at(haystack, pos + 1 - w, b, &mut on_hit)
            {
                return;
            }
            pos += 1;
        }
    }

    /// Horspool match core: bad-character skip walk, with the vectorizable
    /// `position()` degenerate path when all patterns share one trigger.
    fn for_each_match_horspool(
        &self,
        haystack: &[u8],
        mut on_hit: impl FnMut(usize, usize) -> bool,
    ) {
        let w = self.window;
        if haystack.len() < w {
            return;
        }
        let mut pos = w - 1; // index of the current window's last byte
        if let Some(t) = self.single_trigger {
            // Every pattern requires byte `t` at the window end: a plain
            // forward search for `t` (vectorizable) replaces the shift walk.
            while pos < haystack.len() {
                match haystack[pos..].iter().position(|&b| b == t) {
                    None => return,
                    Some(k) => pos += k,
                }
                if !self.verify_at(haystack, pos + 1 - w, t, &mut on_hit) {
                    return;
                }
                pos += 1;
            }
            return;
        }
        while pos < haystack.len() {
            let b = haystack[pos];
            let s = self.shift[b as usize];
            if s == 0 {
                if !self.verify_at(haystack, pos + 1 - w, b, &mut on_hit) {
                    return;
                }
                pos += 1;
            } else {
                pos += s;
            }
        }
    }

    /// Verifies the candidate patterns whose window-end byte is `b` against
    /// `haystack[start..]`. Returns `false` when the callback stops the scan.
    #[inline]
    fn verify_at(
        &self,
        haystack: &[u8],
        start: usize,
        b: u8,
        on_hit: &mut impl FnMut(usize, usize) -> bool,
    ) -> bool {
        for &pi in &self.tail[b as usize] {
            let pat = &self.patterns[pi as usize].bytes;
            if haystack.len() - start >= pat.len()
                && &haystack[start..start + pat.len()] == pat.as_slice()
                && !on_hit(pi as usize, start)
            {
                return false;
            }
        }
        true
    }

    /// Scans an arbitrary byte dump (an attacker's USB capture, a memory
    /// dump, swap contents) and returns every match.
    #[must_use]
    pub fn scan_bytes(&self, haystack: &[u8]) -> Vec<RawHit> {
        let mut hits = Vec::new();
        self.for_each_match(haystack, |pi, offset| {
            hits.push(RawHit { pattern: pi, offset });
            true
        });
        hits
    }

    /// Forces the SWAR prefilter core regardless of trigger count. Public
    /// for benchmarks and differential tests; [`Self::scan_bytes`] dispatches
    /// automatically and is what production paths should call.
    #[must_use]
    pub fn scan_bytes_swar(&self, haystack: &[u8]) -> Vec<RawHit> {
        let mut hits = Vec::new();
        self.for_each_match_swar(haystack, |pi, offset| {
            hits.push(RawHit { pattern: pi, offset });
            true
        });
        hits
    }

    /// Forces the Horspool skip-walk core regardless of trigger count.
    /// Public for benchmarks and differential tests, like
    /// [`Self::scan_bytes_swar`].
    #[must_use]
    pub fn scan_bytes_horspool(&self, haystack: &[u8]) -> Vec<RawHit> {
        let mut hits = Vec::new();
        self.for_each_match_horspool(haystack, |pi, offset| {
            hits.push(RawHit { pattern: pi, offset });
            true
        });
        hits
    }

    /// Like [`Self::scan_bytes`], but splits the haystack into contiguous
    /// chunks scanned on `threads` OS threads. Each shard scans its chunk
    /// plus a `max_pattern_len - 1` straddle into the next, keeping only
    /// matches that *start* inside its chunk, so a boundary-straddling match
    /// is seen exactly once (by the shard owning its first byte). Shard
    /// results are concatenated in chunk order: the output is bit-identical
    /// to the serial scan at any thread count.
    #[must_use]
    pub fn scan_bytes_sharded(&self, haystack: &[u8], threads: usize) -> Vec<RawHit> {
        if threads <= 1 || haystack.len() < self.window {
            return self.scan_bytes(haystack);
        }
        let spans = shard_spans(haystack.len(), threads);
        let shards: Vec<Vec<RawHit>> = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .map(|&(lo, hi)| {
                    scope.spawn(move || {
                        let end = (hi + self.max_len - 1).min(haystack.len());
                        let limit = hi - lo;
                        let mut hits = Vec::new();
                        self.for_each_match(&haystack[lo..end], |pi, off| {
                            // Offsets ascend, so the first start at or past
                            // the chunk edge ends this shard's work.
                            if off < limit {
                                hits.push(RawHit { pattern: pi, offset: lo + off });
                            }
                            off < limit
                        });
                        hits
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan shard panicked"))
                .collect()
        });
        shards.concat()
    }

    /// Reference oracle: the obvious per-offset, per-pattern comparison the
    /// paper's LKM performs. Kept public so differential tests (and anyone
    /// doubting the fast cores) can check SWAR, Horspool, and the sharded
    /// paths against it.
    #[must_use]
    pub fn scan_bytes_naive(&self, haystack: &[u8]) -> Vec<RawHit> {
        let mut hits = Vec::new();
        for offset in 0..haystack.len() {
            for (pi, p) in self.patterns.iter().enumerate() {
                let pat = &p.bytes;
                if haystack.len() - offset >= pat.len()
                    && &haystack[offset..offset + pat.len()] == pat.as_slice()
                {
                    hits.push(RawHit { pattern: pi, offset });
                }
            }
        }
        hits
    }

    /// Number of full matches in a byte dump. Allocation-free: shares the
    /// counting core with [`Self::scan_bytes`] without materializing hits.
    #[must_use]
    pub fn count_matches(&self, haystack: &[u8]) -> usize {
        let mut n = 0usize;
        self.for_each_match(haystack, |_, _| {
            n += 1;
            true
        });
        n
    }

    /// Sharded [`Self::count_matches`]: identical count at any thread count,
    /// same chunk-plus-straddle scheme as [`Self::scan_bytes_sharded`].
    #[must_use]
    pub fn count_matches_sharded(&self, haystack: &[u8], threads: usize) -> usize {
        if threads <= 1 || haystack.len() < self.window {
            return self.count_matches(haystack);
        }
        let spans = shard_spans(haystack.len(), threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .map(|&(lo, hi)| {
                    scope.spawn(move || {
                        let end = (hi + self.max_len - 1).min(haystack.len());
                        let limit = hi - lo;
                        let mut n = 0usize;
                        self.for_each_match(&haystack[lo..end], |_, off| {
                            if off < limit {
                                n += 1;
                            }
                            off < limit
                        });
                        n
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan shard panicked"))
                .sum()
        })
    }

    /// Scans for full *and partial* prefix matches of at least `min_len`
    /// bytes, the way the paper's LKM reports "Partial match found" for runs
    /// of at least `MIN = 5` machine words (20 bytes). Partial matches
    /// matter because a truncated key fragment (e.g. a copy cut by a page
    /// boundary or an overwrite) still narrows an attacker's search space.
    ///
    /// Full matches are reported with `matched_len == pattern length`. A
    /// *run* of overlapping partial prefixes (a self-overlapping pattern
    /// sliding over repetitive memory — all-zero or `0xAA`-filled frames)
    /// reports only the run head: the offset where the previous offset's
    /// prefix was below threshold. Interior offsets of such a run carry no
    /// information an attacker doesn't already have from the head, and
    /// reporting them all is what made this path O(n·m) with an O(n·m)-sized
    /// result. Per-offset work is O(1) amortized (Z-algorithm matching
    /// statistics), so pathological memory costs the same as random memory.
    ///
    /// # Panics
    ///
    /// Panics when `min_len` is zero.
    #[must_use]
    pub fn scan_bytes_partial(&self, haystack: &[u8], min_len: usize) -> Vec<PartialHit> {
        assert!(min_len > 0, "min_len must be positive");
        let mut hits = Vec::new();
        let n = haystack.len();
        for (pi, p) in self.patterns.iter().enumerate() {
            let pat = &p.bytes;
            let clamp = min_len.min(pat.len());
            let z = z_array(pat);
            // Stream the matching statistic ms(i) = lcp(pat, haystack[i..])
            // left to right, carrying the rightmost match interval [l, r).
            let (mut l, mut r) = (0usize, 0usize);
            let mut prev_ms = 0usize;
            for i in 0..n {
                let ms;
                if i < r && (z[i - l] as usize) < r - i {
                    // Entirely inside the known interval: copy the Z value.
                    ms = z[i - l] as usize;
                } else {
                    // Extend an explicit comparison from the interval edge.
                    let mut k = if i < r { r - i } else { 0 };
                    while k < pat.len() && i + k < n && haystack[i + k] == pat[k] {
                        k += 1;
                    }
                    ms = k;
                    if i + k > r {
                        l = i;
                        r = i + k;
                    }
                }
                let full = ms == pat.len();
                if ms >= clamp && (full || prev_ms < clamp) {
                    hits.push(PartialHit {
                        pattern: pi,
                        offset: i,
                        matched_len: ms,
                        full,
                    });
                }
                prev_ms = ms;
            }
        }
        hits.sort_by_key(|h| (h.offset, h.pattern));
        hits
    }

    /// Whether a dump contains at least one full key copy — "attack success"
    /// in the paper's experiments. Early-exits on the first hit without
    /// allocating, via the same core as [`Self::scan_bytes`].
    #[must_use]
    pub fn dump_compromises_key(&self, haystack: &[u8]) -> bool {
        let mut found = false;
        self.for_each_match(haystack, |_, _| {
            found = true;
            false
        });
        found
    }

    /// Renders a report in the exact format the paper's LKM wrote to its
    /// `/proc` entry:
    ///
    /// ```text
    /// Full match found for q of size 64 bytes at: 000123456, in page: 000030, processes: 12 14
    /// ```
    ///
    /// Kernel-owned and page-cache pages print `0` (the LKM's convention for
    /// "the kernel"); free pages with no owner print `none`.
    #[must_use]
    pub fn proc_report(&self, report: &ScanReport) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Request recieved\n"); // sic — the LKM's spelling
        for h in report.hits() {
            let size = self.patterns[h.pattern].bytes.len();
            let _ = write!(
                out,
                "Full match found for {} of size {} bytes at: {:09}, in page: {:06}, processes:",
                h.name, size, h.offset, h.frame.0
            );
            if h.owners.is_empty() {
                if h.allocated {
                    out.push_str(" 0");
                } else {
                    out.push_str(" none");
                }
            } else {
                for p in &h.owners {
                    let _ = write!(out, " {}", p.0);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Scans the simulated machine's entire physical memory, attributing
    /// each match to its frame, owners, and allocation state — the full
    /// `scanmemory` experience.
    #[must_use]
    pub fn scan_kernel(&self, kernel: &Kernel) -> ScanReport {
        self.scan_kernel_sharded(kernel, 1)
    }

    /// Like [`Self::scan_kernel`], but the linear sweep over physical memory
    /// is split into contiguous chunks across `threads` OS threads (see
    /// [`Self::scan_bytes_sharded`]). Hits are merged in frame order, so the
    /// report is bit-identical to the serial scan at any thread count.
    #[must_use]
    pub fn scan_kernel_sharded(&self, kernel: &Kernel, threads: usize) -> ScanReport {
        let raw = if threads <= 1 {
            self.scan_bytes(kernel.phys())
        } else {
            self.scan_bytes_sharded(kernel.phys(), threads)
        };
        // Attribution walks the zero-copy frame-run view in lockstep with
        // the ascending hit list: allocation state comes from the run (one
        // cursor step per state change, not one metadata lookup per hit),
        // owners from the reverse mapping of the frame holding the match
        // start — a straddling match is attributed to its first byte's
        // frame, exactly as before.
        let runs = kernel.frame_runs();
        let mut ri = 0usize;
        let hits = raw
            .into_iter()
            .map(|r| {
                let frame = FrameId(r.offset / PAGE_SIZE);
                while !runs[ri].contains(frame) {
                    ri += 1;
                }
                let state = runs[ri].state;
                KeyHit {
                    pattern: r.pattern,
                    // keylint: allow(S005) -- the pattern *name* ("d", "pem") is a public label, not key bytes
                    name: self.patterns[r.pattern].name.clone(),
                    offset: r.offset,
                    frame,
                    state,
                    allocated: state != FrameState::Free,
                    owners: kernel.frame_view(frame).owners,
                }
            })
            .collect();
        ScanReport {
            hits,
            num_patterns: self.patterns.len(),
        }
    }
}

/// Z-array of `s`: `z[i]` = length of the longest common prefix of `s` and
/// `s[i..]`, with `z[0] = s.len()`. O(len) time.
fn z_array(s: &[u8]) -> Vec<u32> {
    let n = s.len();
    let mut z = vec![0u32; n];
    z[0] = n as u32;
    let (mut l, mut r) = (0usize, 0usize);
    for i in 1..n {
        let mut k = if i < r { (z[i - l] as usize).min(r - i) } else { 0 };
        while i + k < n && s[k] == s[i + k] {
            k += 1;
        }
        z[i] = k as u32;
        if i + k > r {
            l = i;
            r = i + k;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(name: &str, bytes: &[u8]) -> Pattern {
        Pattern::new(name, bytes.to_vec())
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_scanner_rejected() {
        let _ = Scanner::new(vec![]);
    }

    #[test]
    fn finds_single_pattern() {
        let s = Scanner::new(vec![pat("a", b"SECRETKEY")]);
        let hay = [b"xxxx".as_ref(), b"SECRETKEY", b"yy"].concat();
        let hits = s.scan_bytes(&hay);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 4);
        assert_eq!(s.pattern_name(hits[0].pattern), "a");
    }

    #[test]
    fn finds_multiple_occurrences() {
        let s = Scanner::new(vec![pat("a", b"ABCDEFGH")]);
        let hay = [b"ABCDEFGH".as_ref(), b"..", b"ABCDEFGH"].concat();
        assert_eq!(s.count_matches(&hay), 2);
    }

    #[test]
    fn finds_overlapping_occurrences() {
        let s = Scanner::new(vec![pat("a", b"AAAAAAAA")]);
        let hay = vec![b'A'; 10];
        // Positions 0, 1, 2 all match.
        assert_eq!(s.count_matches(&hay), 3);
    }

    #[test]
    fn distinguishes_patterns_with_shared_prefix() {
        let s = Scanner::new(vec![pat("x", b"PREFIX_ONE"), pat("y", b"PREFIX_TWO")]);
        let hay = b"..PREFIX_TWO..PREFIX_ONE..".to_vec();
        let hits = s.scan_bytes(&hay);
        assert_eq!(hits.len(), 2);
        assert_eq!(s.pattern_name(hits[0].pattern), "y");
        assert_eq!(s.pattern_name(hits[1].pattern), "x");
    }

    #[test]
    fn no_false_positive_on_partial_match() {
        let s = Scanner::new(vec![pat("a", b"SECRETKEY")]);
        assert_eq!(s.count_matches(b"SECRETKE"), 0);
        assert_eq!(s.count_matches(b"SECRETKExxxxxxx"), 0);
        assert_eq!(s.count_matches(b""), 0);
    }

    #[test]
    fn match_at_very_end() {
        let s = Scanner::new(vec![pat("a", b"TAILBYTE")]);
        let hay = [b"pad".as_ref(), b"TAILBYTE"].concat();
        let hits = s.scan_bytes(&hay);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 3);
    }

    #[test]
    fn dump_compromise_short_circuit_agrees_with_count() {
        let s = Scanner::new(vec![pat("a", b"NEEDLE__")]);
        assert!(!s.dump_compromises_key(b"nothing here"));
        assert!(s.dump_compromises_key(b"...NEEDLE__..."));
    }

    #[test]
    fn partial_scan_reports_truncated_prefixes() {
        let s = Scanner::new(vec![pat("k", b"ABCDEFGHIJKLMNOP")]); // 16 bytes
        // Full copy plus a 10-byte truncated prefix.
        let hay = [b"..".as_ref(), b"ABCDEFGHIJKLMNOP", b"..", b"ABCDEFGHIJ", b"zz"].concat();
        let hits = s.scan_bytes_partial(&hay, 8);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].full);
        assert_eq!(hits[0].matched_len, 16);
        assert!(!hits[1].full);
        assert_eq!(hits[1].matched_len, 10);
        // A 4-byte fragment stays below the threshold.
        let hits = s.scan_bytes_partial(b"..ABCD..", 8);
        assert!(hits.is_empty());
    }

    #[test]
    fn partial_scan_handles_prefix_cut_by_end_of_dump() {
        let s = Scanner::new(vec![pat("k", b"ABCDEFGHIJKLMNOP")]);
        let hay = b"....ABCDEFGHIJ"; // dump truncates mid-pattern
        let hits = s.scan_bytes_partial(hay, 8);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].matched_len, 10);
        assert!(!hits[0].full);
    }

    #[test]
    fn partial_scan_full_matches_agree_with_scan_bytes() {
        let s = Scanner::new(vec![pat("k", b"NEEDLE__")]);
        let hay = [b"NEEDLE__".as_ref(), b"..", b"NEEDLE__"].concat();
        let full: Vec<usize> = s
            .scan_bytes_partial(&hay, 8)
            .into_iter()
            .filter(|h| h.full)
            .map(|h| h.offset)
            .collect();
        let direct: Vec<usize> = s.scan_bytes(&hay).into_iter().map(|h| h.offset).collect();
        assert_eq!(full, direct);
    }

    #[test]
    #[should_panic(expected = "min_len must be positive")]
    fn partial_scan_zero_min_rejected() {
        let s = Scanner::new(vec![pat("k", b"NEEDLE__")]);
        let _ = s.scan_bytes_partial(b"x", 0);
    }

    #[test]
    fn swar_eq_flags_matching_lanes() {
        let word = u64::from_le_bytes(*b"aXbXcXdX");
        let mask = swar_eq(word, splat(b'X'));
        // Lanes 1, 3, 5, 7 hold b'X'; each must be flagged.
        for lane in [1u32, 3, 5, 7] {
            assert_ne!(mask & (0x80u64 << (lane * 8)), 0, "lane {lane} unflagged");
        }
        assert_eq!(swar_eq(word, splat(b'Z')), 0);
        assert_eq!(swar_eq(0, splat(0)), 0x8080_8080_8080_8080);
    }

    #[test]
    fn shard_spans_partition_the_range() {
        for len in [0usize, 1, 7, 64, 65, 4096, 12345] {
            for shards in [1usize, 2, 3, 4, 8, 200] {
                let spans = shard_spans(len, shards);
                assert!(!spans.is_empty());
                assert_eq!(spans[0].0, 0);
                assert_eq!(spans.last().unwrap().1, len);
                let mut covered = 0usize;
                for win in spans.windows(2) {
                    assert_eq!(win[0].1, win[1].0, "spans must be contiguous");
                }
                for &(lo, hi) in &spans {
                    assert!(lo <= hi);
                    covered += hi - lo;
                }
                assert_eq!(covered, len);
                // Near-equal: sizes differ by at most one byte.
                let sizes: Vec<usize> = spans.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn swar_and_horspool_agree_with_naive_on_small_cases() {
        let s = Scanner::new(vec![pat("a", b"AAAAAAAA"), pat("b", b"ABABABAB")]);
        for hay in [
            vec![b'A'; 100],
            b"xxABABABABxxAAAAAAAAxx".to_vec(),
            vec![0u8; 300],
            b"short".to_vec(),
        ] {
            let oracle = s.scan_bytes_naive(&hay);
            assert_eq!(s.scan_bytes_swar(&hay), oracle);
            assert_eq!(s.scan_bytes_horspool(&hay), oracle);
            assert_eq!(s.scan_bytes(&hay), oracle);
        }
    }

    #[test]
    fn sharded_scan_is_bit_identical_to_serial() {
        let s = Scanner::new(vec![pat("a", b"NEEDLE__")]);
        let mut hay = vec![0u8; 10_000];
        // Plant copies everywhere, including straddling every 4-thread chunk
        // boundary (multiples of 2500) and ending flush with the haystack.
        for &at in &[0usize, 1000, 2496, 4996, 7496, 9992] {
            hay[at..at + 8].copy_from_slice(b"NEEDLE__");
        }
        let serial = s.scan_bytes(&hay);
        assert_eq!(serial.len(), 6);
        for threads in [1usize, 2, 3, 4, 8, 64] {
            assert_eq!(s.scan_bytes_sharded(&hay, threads), serial, "threads={threads}");
            assert_eq!(s.count_matches_sharded(&hay, threads), serial.len());
        }
    }

    #[test]
    fn pattern_with_zero_trigger_byte_disables_zero_skip_correctly() {
        // Window-end byte 0x00: the all-zero block reject must not fire.
        let mut bytes = vec![1u8; 8];
        bytes[7] = 0;
        let s = Scanner::new(vec![pat("z", &bytes)]);
        let mut hay = vec![0u8; 600];
        hay[256..264].copy_from_slice(&[1, 1, 1, 1, 1, 1, 1, 0]);
        assert_eq!(s.scan_bytes(&hay), s.scan_bytes_naive(&hay));
        assert_eq!(s.count_matches(&hay), 1);
    }
}
