//! Locating cryptographic keys in (simulated) memory.
//!
//! This crate reimplements the paper's `scanmemory` loadable kernel module
//! (Section 3.1 and the appendix): a linear, O(n) sweep of physical memory
//! for the byte patterns that constitute "a copy of the private key" (d, P,
//! Q, and the PEM file), with each hit attributed to the processes that map
//! the containing page via the reverse mapping, and classified as living in
//! *allocated* or *unallocated* memory.
//!
//! # Examples
//!
//! ```
//! use keyscan::Scanner;
//! use memsim::{Kernel, MachineConfig};
//! use rsa_repro::{material::KeyMaterial, RsaPrivateKey};
//! use simrng::Rng64;
//!
//! let key = RsaPrivateKey::generate(128, &mut Rng64::new(1));
//! let material = KeyMaterial::from_key(&key);
//! let scanner = Scanner::from_material(&material);
//!
//! let mut k = Kernel::new(MachineConfig::small());
//! let pid = k.spawn();
//! let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
//! k.write_bytes(pid, buf, material.d_bytes()).unwrap();
//!
//! let report = scanner.scan_kernel(&k);
//! assert_eq!(report.total(), 1);
//! assert_eq!(report.allocated(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entropy;

pub use entropy::{EntropyRegion, EntropyScanner};

use memsim::{FrameId, FrameState, Kernel, Pid, PAGE_SIZE};
use rsa_repro::material::{KeyMaterial, Pattern};

/// A pattern match in a raw byte dump (no page metadata available).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawHit {
    /// Index into the scanner's pattern list.
    pub pattern: usize,
    /// Pattern name (`"d"`, `"p"`, `"q"`, `"pem"`).
    pub name: String,
    /// Byte offset of the match start.
    pub offset: usize,
}

/// A full or truncated prefix match found by [`Scanner::scan_bytes_partial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialHit {
    /// Index into the scanner's pattern list.
    pub pattern: usize,
    /// Pattern name.
    pub name: String,
    /// Byte offset of the match start.
    pub offset: usize,
    /// How many leading bytes of the pattern matched.
    pub matched_len: usize,
    /// Whether the entire pattern matched.
    pub full: bool,
}

/// A pattern match in simulated physical memory, with page attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyHit {
    /// Index into the scanner's pattern list.
    pub pattern: usize,
    /// Pattern name.
    pub name: String,
    /// Physical byte offset of the match start.
    pub offset: usize,
    /// Frame containing the match start.
    pub frame: FrameId,
    /// State of that frame.
    pub state: FrameState,
    /// Whether the frame counts as allocated memory (process, kernel, or
    /// page cache) rather than free-list memory.
    pub allocated: bool,
    /// Processes mapping the frame (the paper's `printOwningProcesses`).
    pub owners: Vec<Pid>,
}

/// Aggregated scan results for one snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    hits: Vec<KeyHit>,
    num_patterns: usize,
}

impl ScanReport {
    /// All hits, in ascending physical order.
    #[must_use]
    pub fn hits(&self) -> &[KeyHit] {
        &self.hits
    }

    /// Total number of key copies found.
    #[must_use]
    pub fn total(&self) -> usize {
        self.hits.len()
    }

    /// Copies found in allocated memory.
    #[must_use]
    pub fn allocated(&self) -> usize {
        self.hits.iter().filter(|h| h.allocated).count()
    }

    /// Copies found in unallocated (free-list) memory.
    #[must_use]
    pub fn unallocated(&self) -> usize {
        self.hits.iter().filter(|h| !h.allocated).count()
    }

    /// Hit counts per pattern index.
    #[must_use]
    pub fn by_pattern(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_patterns];
        for h in &self.hits {
            counts[h.pattern] += 1;
        }
        counts
    }

    /// `(physical_offset, allocated)` pairs — the data behind the paper's
    /// "locations of keys in memory" scatter plots (Figures 5a, 6a, 9…27).
    #[must_use]
    pub fn locations(&self) -> Vec<(usize, bool)> {
        self.hits.iter().map(|h| (h.offset, h.allocated)).collect()
    }

    /// Whether any full copy of the key was found at all.
    #[must_use]
    pub fn compromised(&self) -> bool {
        !self.hits.is_empty()
    }
}

/// The change between two scans of the same machine — how the paper's
/// timeline observations (copies appearing under load, migrating from
/// allocated to unallocated at process exit) are detected mechanically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanDiff {
    /// Copies present only in the later scan.
    pub appeared: Vec<KeyHit>,
    /// Copies present only in the earlier scan.
    pub disappeared: Vec<KeyHit>,
    /// Copies at the same location whose allocation state flipped,
    /// `(earlier, later)` — observation (4) of Figure 5 is exactly a wave of
    /// allocated→unallocated entries here.
    pub reclassified: Vec<(KeyHit, KeyHit)>,
}

impl ScanDiff {
    /// Whether nothing changed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.disappeared.is_empty() && self.reclassified.is_empty()
    }

    /// Number of copies that moved from allocated to unallocated.
    #[must_use]
    pub fn freed_in_place(&self) -> usize {
        self.reclassified
            .iter()
            .filter(|(before, after)| before.allocated && !after.allocated)
            .count()
    }
}

impl ScanReport {
    /// Diffs this (earlier) report against a `later` one. Hits are matched
    /// by `(pattern, physical offset)`.
    #[must_use]
    pub fn diff(&self, later: &ScanReport) -> ScanDiff {
        use std::collections::HashMap;
        let key = |h: &KeyHit| (h.pattern, h.offset);
        let earlier: HashMap<_, &KeyHit> = self.hits.iter().map(|h| (key(h), h)).collect();
        let later_map: HashMap<_, &KeyHit> = later.hits.iter().map(|h| (key(h), h)).collect();

        let mut diff = ScanDiff::default();
        for h in &later.hits {
            match earlier.get(&key(h)) {
                None => diff.appeared.push(h.clone()),
                Some(old) if old.allocated != h.allocated => {
                    diff.reclassified.push(((*old).clone(), h.clone()));
                }
                Some(_) => {}
            }
        }
        for h in &self.hits {
            if !later_map.contains_key(&key(h)) {
                diff.disappeared.push(h.clone());
            }
        }
        diff
    }
}

/// Multi-pattern linear memory scanner.
///
/// Construction precomputes a 256-entry first-byte dispatch table so one pass
/// checks all patterns, preserving the O(n) behaviour the paper reports
/// (about 5 seconds for 256 MB on 2007 hardware).
// keylint: allow(S003) -- the patterns vector drops its elements and each Pattern zeroes its own bytes; no other field holds key material
pub struct Scanner {
    patterns: Vec<Pattern>,
    /// For each possible first byte, the patterns starting with it.
    dispatch: Vec<Vec<usize>>,
}

/// The patterns are the key material being hunted, so `{:?}` stops at a count.
impl core::fmt::Debug for Scanner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let count = self.patterns.len();
        write!(f, "Scanner({count} patterns, <redacted>)")
    }
}

impl Scanner {
    /// Builds a scanner for arbitrary patterns.
    ///
    /// # Panics
    ///
    /// Panics when `patterns` is empty.
    #[must_use]
    pub fn new(patterns: Vec<Pattern>) -> Self {
        assert!(!patterns.is_empty(), "scanner needs at least one pattern");
        let mut dispatch = vec![Vec::new(); 256];
        for (i, p) in patterns.iter().enumerate() {
            dispatch[p.bytes[0] as usize].push(i);
        }
        Self { patterns, dispatch }
    }

    /// Builds the paper's standard scanner over `(d, p, q, pem)`.
    #[must_use]
    pub fn from_material(material: &KeyMaterial) -> Self {
        Self::new(material.patterns().iter().map(Pattern::clone_secret).collect())
    }

    /// The patterns being searched for.
    #[must_use]
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Scans an arbitrary byte dump (an attacker's USB capture, a memory
    /// dump, swap contents) and returns every match.
    #[must_use]
    pub fn scan_bytes(&self, haystack: &[u8]) -> Vec<RawHit> {
        let mut hits = Vec::new();
        for (offset, &b) in haystack.iter().enumerate() {
            let candidates = &self.dispatch[b as usize];
            if candidates.is_empty() {
                continue;
            }
            for &pi in candidates {
                let pat = &self.patterns[pi].bytes;
                if haystack.len() - offset >= pat.len()
                    && &haystack[offset..offset + pat.len()] == pat.as_slice()
                {
                    hits.push(RawHit {
                        pattern: pi,
                        // keylint: allow(S005) -- the pattern *name* ("d", "pem") is a public label, not key bytes
                        name: self.patterns[pi].name.clone(),
                        offset,
                    });
                }
            }
        }
        hits
    }

    /// Number of full matches in a byte dump (cheaper than collecting hits).
    #[must_use]
    pub fn count_matches(&self, haystack: &[u8]) -> usize {
        self.scan_bytes(haystack).len()
    }

    /// Scans for full *and partial* prefix matches of at least `min_len`
    /// bytes, the way the paper's LKM reports "Partial match found" for runs
    /// of at least `MIN = 5` machine words (20 bytes). Partial matches
    /// matter because a truncated key fragment (e.g. a copy cut by a page
    /// boundary or an overwrite) still narrows an attacker's search space.
    ///
    /// Full matches are reported with `matched_len == pattern length`.
    ///
    /// # Panics
    ///
    /// Panics when `min_len` is zero.
    #[must_use]
    pub fn scan_bytes_partial(&self, haystack: &[u8], min_len: usize) -> Vec<PartialHit> {
        assert!(min_len > 0, "min_len must be positive");
        let mut hits = Vec::new();
        for (offset, &b) in haystack.iter().enumerate() {
            for &pi in &self.dispatch[b as usize] {
                let pat = &self.patterns[pi].bytes;
                let avail = haystack.len() - offset;
                let mut matched = 0usize;
                while matched < pat.len()
                    && matched < avail
                    && haystack[offset + matched] == pat[matched]
                {
                    matched += 1;
                }
                if matched >= min_len.min(pat.len()) {
                    hits.push(PartialHit {
                        pattern: pi,
                        // keylint: allow(S005) -- the pattern *name* ("d", "pem") is a public label, not key bytes
                        name: self.patterns[pi].name.clone(),
                        offset,
                        matched_len: matched,
                        full: matched == pat.len(),
                    });
                }
            }
        }
        hits
    }

    /// Whether a dump contains at least one full key copy — "attack success"
    /// in the paper's experiments.
    #[must_use]
    pub fn dump_compromises_key(&self, haystack: &[u8]) -> bool {
        // Early-exit variant of scan_bytes.
        for (offset, &b) in haystack.iter().enumerate() {
            for &pi in &self.dispatch[b as usize] {
                let pat = &self.patterns[pi].bytes;
                if haystack.len() - offset >= pat.len()
                    && &haystack[offset..offset + pat.len()] == pat.as_slice()
                {
                    return true;
                }
            }
        }
        false
    }

    /// Renders a report in the exact format the paper's LKM wrote to its
    /// `/proc` entry:
    ///
    /// ```text
    /// Full match found for q of size 64 bytes at: 000123456, in page: 000030, processes: 12 14
    /// ```
    ///
    /// Kernel-owned and page-cache pages print `0` (the LKM's convention for
    /// "the kernel"); free pages with no owner print `none`.
    #[must_use]
    pub fn proc_report(&self, report: &ScanReport) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Request recieved\n"); // sic — the LKM's spelling
        for h in report.hits() {
            let size = self.patterns[h.pattern].bytes.len();
            let _ = write!(
                out,
                "Full match found for {} of size {} bytes at: {:09}, in page: {:06}, processes:",
                h.name, size, h.offset, h.frame.0
            );
            if h.owners.is_empty() {
                if h.allocated {
                    out.push_str(" 0");
                } else {
                    out.push_str(" none");
                }
            } else {
                for p in &h.owners {
                    let _ = write!(out, " {}", p.0);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Scans the simulated machine's entire physical memory, attributing
    /// each match to its frame, owners, and allocation state — the full
    /// `scanmemory` experience.
    #[must_use]
    pub fn scan_kernel(&self, kernel: &Kernel) -> ScanReport {
        let raw = self.scan_bytes(kernel.phys());
        let hits = raw
            .into_iter()
            .map(|r| {
                let frame = FrameId(r.offset / PAGE_SIZE);
                let view = kernel.frame_view(frame);
                KeyHit {
                    pattern: r.pattern,
                    name: r.name,
                    offset: r.offset,
                    frame,
                    state: view.state,
                    allocated: view.state != FrameState::Free,
                    owners: view.owners,
                }
            })
            .collect();
        ScanReport {
            hits,
            num_patterns: self.patterns.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(name: &str, bytes: &[u8]) -> Pattern {
        Pattern::new(name, bytes.to_vec())
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_scanner_rejected() {
        let _ = Scanner::new(vec![]);
    }

    #[test]
    fn finds_single_pattern() {
        let s = Scanner::new(vec![pat("a", b"SECRETKEY")]);
        let hay = [b"xxxx".as_ref(), b"SECRETKEY", b"yy"].concat();
        let hits = s.scan_bytes(&hay);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 4);
        assert_eq!(hits[0].name, "a");
    }

    #[test]
    fn finds_multiple_occurrences() {
        let s = Scanner::new(vec![pat("a", b"ABCDEFGH")]);
        let hay = [b"ABCDEFGH".as_ref(), b"..", b"ABCDEFGH"].concat();
        assert_eq!(s.count_matches(&hay), 2);
    }

    #[test]
    fn finds_overlapping_occurrences() {
        let s = Scanner::new(vec![pat("a", b"AAAAAAAA")]);
        let hay = vec![b'A'; 10];
        // Positions 0, 1, 2 all match.
        assert_eq!(s.count_matches(&hay), 3);
    }

    #[test]
    fn distinguishes_patterns_with_shared_prefix() {
        let s = Scanner::new(vec![pat("x", b"PREFIX_ONE"), pat("y", b"PREFIX_TWO")]);
        let hay = b"..PREFIX_TWO..PREFIX_ONE..".to_vec();
        let hits = s.scan_bytes(&hay);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].name, "y");
        assert_eq!(hits[1].name, "x");
    }

    #[test]
    fn no_false_positive_on_partial_match() {
        let s = Scanner::new(vec![pat("a", b"SECRETKEY")]);
        assert_eq!(s.count_matches(b"SECRETKE"), 0);
        assert_eq!(s.count_matches(b"SECRETKExxxxxxx"), 0);
        assert_eq!(s.count_matches(b""), 0);
    }

    #[test]
    fn match_at_very_end() {
        let s = Scanner::new(vec![pat("a", b"TAILBYTE")]);
        let hay = [b"pad".as_ref(), b"TAILBYTE"].concat();
        let hits = s.scan_bytes(&hay);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 3);
    }

    #[test]
    fn dump_compromise_short_circuit_agrees_with_count() {
        let s = Scanner::new(vec![pat("a", b"NEEDLE__")]);
        assert!(!s.dump_compromises_key(b"nothing here"));
        assert!(s.dump_compromises_key(b"...NEEDLE__..."));
    }

    #[test]
    fn partial_scan_reports_truncated_prefixes() {
        let s = Scanner::new(vec![pat("k", b"ABCDEFGHIJKLMNOP")]); // 16 bytes
        // Full copy plus a 10-byte truncated prefix.
        let hay = [b"..".as_ref(), b"ABCDEFGHIJKLMNOP", b"..", b"ABCDEFGHIJ", b"zz"].concat();
        let hits = s.scan_bytes_partial(&hay, 8);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].full);
        assert_eq!(hits[0].matched_len, 16);
        assert!(!hits[1].full);
        assert_eq!(hits[1].matched_len, 10);
        // A 4-byte fragment stays below the threshold.
        let hits = s.scan_bytes_partial(b"..ABCD..", 8);
        assert!(hits.is_empty());
    }

    #[test]
    fn partial_scan_handles_prefix_cut_by_end_of_dump() {
        let s = Scanner::new(vec![pat("k", b"ABCDEFGHIJKLMNOP")]);
        let hay = b"....ABCDEFGHIJ"; // dump truncates mid-pattern
        let hits = s.scan_bytes_partial(hay, 8);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].matched_len, 10);
        assert!(!hits[0].full);
    }

    #[test]
    fn partial_scan_full_matches_agree_with_scan_bytes() {
        let s = Scanner::new(vec![pat("k", b"NEEDLE__")]);
        let hay = [b"NEEDLE__".as_ref(), b"..", b"NEEDLE__"].concat();
        let full: Vec<usize> = s
            .scan_bytes_partial(&hay, 8)
            .into_iter()
            .filter(|h| h.full)
            .map(|h| h.offset)
            .collect();
        let direct: Vec<usize> = s.scan_bytes(&hay).into_iter().map(|h| h.offset).collect();
        assert_eq!(full, direct);
    }

    #[test]
    #[should_panic(expected = "min_len must be positive")]
    fn partial_scan_zero_min_rejected() {
        let s = Scanner::new(vec![pat("k", b"NEEDLE__")]);
        let _ = s.scan_bytes_partial(b"x", 0);
    }
}
