//! The memory-deduplication timing side channel (KSM-style).
//!
//! Page dedup merges byte-identical pages across processes into one
//! COW-shared frame. That sharing is *observable*: a write to a merged page
//! takes a copy-on-write fault, a write to an unmerged page does not. An
//! attacker who can guess a victim page byte-for-byte therefore gets an
//! oracle — plant the guess, wait for the deduplicator, write one byte, and
//! time the write. The simulator's clock for "did a COW fault happen" is
//! the kernel's `cow_breaks` counter, which stands in for the latency
//! difference the real attack measures.
//!
//! The probe needs no privileges at all: it reads nothing but its own
//! memory and a public statistic. What it defeats is exactly the protection
//! tiers that keep the key in a *predictable, page-aligned plaintext
//! layout* — the aligned key region's tidy formatting is what makes the
//! page guessable.

use memsim::{Kernel, Pid, SimResult, PAGE_SIZE};

/// Outcome of one [`dedup_probe`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupProbe {
    /// Whether the planted candidate page got merged with another page —
    /// i.e. the byte-identical page *exists somewhere* in memory.
    pub merged: bool,
    /// COW faults observed when re-writing the candidate (0 or 1).
    pub cow_faults: u64,
}

impl DedupProbe {
    /// The attacker's verdict: a merge means the guess was right.
    #[must_use]
    pub fn confirms_candidate(self) -> bool {
        self.merged
    }
}

/// Runs one dedup-timing probe from process `pid` for a full-page guess.
///
/// Plants `candidate` in a fresh page of the attacker's own address space,
/// invites the deduplicator to run, then re-writes the first byte *with its
/// existing value* (the store is a semantic no-op — pure timing probe) and
/// reports whether that store took a copy-on-write fault. It does iff the
/// page had been merged with an identical page elsewhere.
///
/// `candidate` must be at most [`PAGE_SIZE`] bytes; shorter guesses are
/// zero-padded, matching a freshly zeroed anonymous page.
///
/// # Errors
///
/// Propagates simulator errors from the allocation and write paths.
pub fn dedup_probe(kernel: &mut Kernel, pid: Pid, candidate: &[u8]) -> SimResult<DedupProbe> {
    assert!(
        candidate.len() <= PAGE_SIZE,
        "candidate must fit one page ({} > {PAGE_SIZE})",
        candidate.len()
    );
    // Plant the guess in our own memory. The page is freshly zeroed, so a
    // short candidate plus implicit zero tail is exactly one page image.
    let page = kernel.alloc_special_region(pid, 1)?;
    kernel.write_bytes(pid, page, candidate)?;

    // The deduplicator pass (in the real attack: wait for ksmd).
    kernel.merge_identical_pages();

    // Timed write: same value back into the first byte. If the page was
    // merged the store must break COW; if not, it is an in-place store.
    let first = if candidate.is_empty() { 0 } else { candidate[0] };
    let before = kernel.stats().cow_breaks;
    kernel.write_bytes(pid, page, &[first])?;
    let cow_faults = kernel.stats().cow_breaks - before;

    kernel.free_special_region(pid, page, 1)?;
    Ok(DedupProbe {
        merged: cow_faults > 0,
        cow_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;

    fn kernel() -> Kernel {
        Kernel::new(MachineConfig::small())
    }

    #[test]
    fn probe_confirms_a_correct_full_page_guess() {
        let mut k = kernel();
        let victim = k.spawn();
        let attacker = k.spawn();
        let mut secret_page = vec![0u8; PAGE_SIZE];
        secret_page[..8].copy_from_slice(b"SECRET!!");
        let rv = k.alloc_special_region(victim, 1).unwrap();
        k.write_bytes(victim, rv, &secret_page).unwrap();

        let probe = dedup_probe(&mut k, attacker, &secret_page).unwrap();
        assert!(probe.confirms_candidate());
        assert_eq!(probe.cow_faults, 1);
        // The victim's data is untouched by the probe.
        assert_eq!(k.read_bytes(victim, rv, 8).unwrap(), b"SECRET!!");
    }

    #[test]
    fn probe_rejects_a_wrong_guess() {
        let mut k = kernel();
        let victim = k.spawn();
        let attacker = k.spawn();
        let mut secret_page = vec![0u8; PAGE_SIZE];
        secret_page[..8].copy_from_slice(b"SECRET!!");
        let rv = k.alloc_special_region(victim, 1).unwrap();
        k.write_bytes(victim, rv, &secret_page).unwrap();

        let mut wrong = secret_page.clone();
        wrong[7] ^= 1;
        let probe = dedup_probe(&mut k, attacker, &wrong).unwrap();
        assert!(!probe.confirms_candidate());
        assert_eq!(probe.cow_faults, 0);
    }

    #[test]
    fn short_candidates_match_zero_padded_pages() {
        let mut k = kernel();
        let victim = k.spawn();
        let attacker = k.spawn();
        // Victim writes a short value into a fresh (zeroed) page.
        let rv = k.alloc_special_region(victim, 1).unwrap();
        k.write_bytes(victim, rv, b"pin=1234").unwrap();

        let probe = dedup_probe(&mut k, attacker, b"pin=1234").unwrap();
        assert!(probe.confirms_candidate(), "zero tail matches zero tail");
    }

    #[test]
    fn probe_leaves_no_candidate_copy_behind_in_mapped_memory() {
        let mut k = kernel();
        let attacker = k.spawn();
        let mut guess = vec![0u8; 64];
        guess[..6].copy_from_slice(b"GUESS!");
        dedup_probe(&mut k, attacker, &guess).unwrap();
        // The probe page was freed; the attacker holds no mapping with the
        // candidate (the frame residue is the ordinary dirty-free hazard,
        // the probe itself must not accumulate mappings).
        let dump = k.dump_process(attacker).unwrap();
        assert!(!dump.windows(6).any(|w| w == b"GUESS!"));
    }
}
