//! Partial-key reconstruction from noisy (cold-boot) memory dumps.
//!
//! The exact-pattern scanner in the crate root models the paper's attacker:
//! a byte-for-byte sweep that a single flipped bit defeats. This module
//! models the *stronger* attacker of the cold-boot literature
//! (Halderman et al., Heninger–Shacham): given a decayed physical image
//! whose 1-bits only ever decay to 0 (the ground-state assumption), every
//! surviving 1-bit is a *certain* bit of the original memory, and an RSA
//! private key can be rebuilt from far less than a full copy by exploiting
//! the arithmetic relations between its CRT components.
//!
//! The pipeline, all driven by public information (`n`, `e`) plus the dump:
//!
//! 1. **Candidate harvest** — propose `(d, p, q)` window triples from the
//!    two layouts the simulated victims actually produce: the page-aligned
//!    packed `SecureKeyRegion` image, and the bump-allocated heap chunks of
//!    a scattered `d2i_RSAPrivateKey` load (anchored on the `0xC3` filler
//!    the derived-CRT chunks carry).
//! 2. **k prefilter** — for `e·d = 1 + k·φ(n)`, the integer `k < e` also
//!    satisfies `d̃(k) = ⌊(1 + k(n+1))/e⌋ ≥ d` with `d̃(k) − d < p + q`,
//!    so the *top* bits of `d` equal the top bits of `d̃(k)`. One-sided
//!    comparison of a high window of the observed `d` against a
//!    precomputed `d̃` table eliminates junk candidates and pins `k` to a
//!    handful of values before any tree search runs.
//! 3. **Branch-and-bound** — Heninger–Shacham style LSB-up lifting of
//!    `(p, q, d)` simultaneously: `p·q ≡ n (mod 2^i)` determines each
//!    `q_i` from the chosen `p_i`, and `d ≡ e⁻¹(1 + k(n + 1 − p − q))
//!    (mod 2^i)` checks the decayed `d` image. Observed 1-bits force
//!    branches; observed 0-bits are uninformative (they may have decayed).
//! 4. **Exact verification** — a candidate survives only if `p·q = n`
//!    exactly and [`RsaPrivateKey::from_components`] accepts the tuple, so
//!    the reconstructor *never returns a wrong key*: above the decay
//!    threshold it reports failure (budget exhaustion), not garbage.

use bignum::BigUint;
use memsim::PAGE_SIZE;
use rsa_repro::{RsaPrivateKey, RsaPublicKey};

/// Heap chunks are 16-byte aligned (`memsim`'s `CHUNK_ALIGN`).
const CHUNK_ALIGN: usize = 16;

/// Filler byte the scattered loader writes into the dp/dq/qinv chunks.
const CRT_FILLER: u8 = 0xC3;

/// Search budgets and screening thresholds. The defaults are tuned so a
/// sub-second reconstruction succeeds comfortably below ~35% decay on the
/// experiment key sizes and fails *cleanly* (budget exhaustion) above.
#[derive(Debug, Clone)]
pub struct ReconstructConfig {
    /// Node budget for a single `(candidate, k)` branch-and-bound run.
    pub max_nodes_per_branch: usize,
    /// Aggregate node budget across the whole dump.
    pub max_total_nodes: usize,
    /// How many surviving `k` values to try per candidate, best first.
    pub max_k_candidates: usize,
    /// One-sided mismatches tolerated in the high-window `k` prefilter.
    pub k_conflict_tolerance: u32,
    /// Cap on harvested candidate triples per dump.
    pub max_candidates: usize,
}

impl Default for ReconstructConfig {
    fn default() -> Self {
        Self {
            max_nodes_per_branch: 200_000,
            max_total_nodes: 2_000_000,
            max_k_candidates: 8,
            k_conflict_tolerance: 3,
            max_candidates: 16_384,
        }
    }
}

/// What the reconstruction attempt did — enough to explain both success
/// and failure in experiment reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReconstructStats {
    /// Candidate `(d, p, q)` window triples harvested from the dump.
    pub candidates: usize,
    /// `(candidate, k)` pairs that survived the high-window prefilter.
    pub branches_tried: usize,
    /// Branch-and-bound nodes expanded in total.
    pub nodes_expanded: usize,
    /// Whether any budget cap cut the search short (the honest failure
    /// mode: the true path is never *pruned*, only priced out).
    pub truncated: bool,
}

/// Result of [`reconstruct`]: the rebuilt key, if any, plus search stats.
pub struct Reconstruction {
    /// The recovered private key. `Some` is always *correct* (verified
    /// against `n` and `e`); `None` means the dump did not yield the key
    /// within budget.
    pub key: Option<RsaPrivateKey>,
    /// Search statistics.
    pub stats: ReconstructStats,
}

/// The key, if present, stays out of debug output.
impl core::fmt::Debug for Reconstruction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let status = if self.key.is_some() { "<redacted>" } else { "none" };
        write!(f, "Reconstruction(key={status}, stats={:?})", self.stats)
    }
}

/// Component byte-image lengths implied by the public modulus: the limb
/// layout (`rsa_repro::material::limb_bytes`) stores `ceil(bits/64)` limbs
/// of 8 bytes each, and generated primes have exactly `⌈bit_len(n)/2⌉`
/// bits.
struct Layout {
    /// `bit_len(n)`.
    b: usize,
    /// Prime bit length `⌈b/2⌉`.
    h: usize,
    /// Byte length of the `d` image (usual case: full-width `d`).
    dl: usize,
    /// Byte length of the `p`/`q` images.
    pl: usize,
}

impl Layout {
    fn of(n: &BigUint) -> Self {
        let b = n.bit_len();
        let h = b.div_ceil(2);
        Self {
            b,
            h,
            dl: b.div_ceil(64) * 8,
            pl: h.div_ceil(64) * 8,
        }
    }
}

/// One proposed `(d, p, q)` byte-window triple, already lifted to bignums.
struct Candidate {
    obs_d: BigUint,
    obs_p: BigUint,
    obs_q: BigUint,
}

/// Reads `len` little-endian-limb bytes at `off` as a [`BigUint`].
fn window_biguint(dump: &[u8], off: usize, len: usize) -> Option<BigUint> {
    let bytes = dump.get(off..off.checked_add(len)?)?;
    let limbs = bytes
        .chunks(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(a)
        })
        .collect();
    Some(BigUint::from_limbs(limbs))
}

/// Truncates `x` to its low `bits` bits.
fn mask_bits(x: &BigUint, bits: usize) -> BigUint {
    let whole = bits / 64;
    let rem = bits % 64;
    let keep = whole + usize::from(rem != 0);
    let src = x.limbs();
    let mut limbs: Vec<u64> = src.iter().copied().take(keep).collect();
    if rem != 0 && limbs.len() == keep && src.len() >= keep {
        limbs[keep - 1] &= (1u64 << rem) - 1;
    }
    BigUint::from_limbs(limbs)
}

/// Bits `[lo, lo + w)` of `x` as a `u128` (LSB of the result = bit `lo`).
fn window_u128(x: &BigUint, lo: usize, w: usize) -> u128 {
    debug_assert!(w <= 128);
    let mut out = 0u128;
    for j in 0..w {
        if x.bit(lo + j) {
            out |= 1u128 << j;
        }
    }
    out
}

/// Does the decayed window at `off..off + len` look like a `0xC3`-filled
/// chunk? One-sided: every observed 1-bit must lie inside `0xC3`, and
/// enough 1-bits must survive to rule out zeroed/free memory.
fn looks_like_filler(dump: &[u8], off: usize, len: usize) -> bool {
    let Some(bytes) = dump.get(off..off + len) else {
        return false;
    };
    let mut ones = 0u32;
    for &b in bytes {
        if b & !CRT_FILLER != 0 {
            return false;
        }
        ones += b.count_ones();
    }
    // A pristine chunk has 4 one-bits per byte; demand at least one per
    // byte on average so long runs of zeros never anchor a candidate.
    ones as usize >= len
}

/// Rounds a chunk size up to the heap allocator's alignment.
fn round_chunk(len: usize) -> usize {
    len.div_ceil(CHUNK_ALIGN) * CHUNK_ALIGN
}

/// Harvests candidate triples from both victim layouts.
///
/// *Region layout*: `SecureKeyRegion` packs `d ‖ p ‖ q ‖ …` from the start
/// of a page-aligned region, so every page offset proposes one triple
/// (two, when `d` may be one limb short of full width).
///
/// *Heap layout*: the scattered loader allocates `d, p, q, dp, dq, qinv`
/// back to back in a headerless 16-byte-aligned bump heap and fills the
/// three derived chunks with `0xC3`. A decayed filler pair (`dp` then
/// `dq`) anchors the walk back to `q`, `p`, and `d`.
fn harvest(dump: &[u8], layout: &Layout, cfg: &ReconstructConfig) -> Vec<Candidate> {
    let mut out = Vec::new();
    let d_lens = if layout.dl > 8 {
        vec![layout.dl, layout.dl - 8]
    } else {
        vec![layout.dl]
    };

    let push = |out: &mut Vec<Candidate>, d_off: usize, dl: usize, p_off: usize, q_off: usize| {
        let (Some(obs_d), Some(obs_p), Some(obs_q)) = (
            window_biguint(dump, d_off, dl),
            window_biguint(dump, p_off, layout.pl),
            window_biguint(dump, q_off, layout.pl),
        ) else {
            return;
        };
        // Reject windows too sparse to be decayed key material: at decay
        // rate r the expected 1-bit density is (1 − r)/2, so even 75%
        // decay keeps ~12.5% of bits — one per byte.
        if count_ones(&obs_p) < layout.pl || count_ones(&obs_q) < layout.pl {
            return;
        }
        out.push(Candidate { obs_d, obs_p, obs_q });
    };

    // Region layout: one window per page.
    for page in 0..dump.len() / PAGE_SIZE {
        let base = page * PAGE_SIZE;
        for &dl in &d_lens {
            push(&mut out, base, dl, base + dl, base + dl + layout.pl);
            if out.len() >= cfg.max_candidates {
                return out;
            }
        }
    }

    // Heap layout: anchor on the dp/dq filler chunks.
    let pc = round_chunk(layout.pl);
    for anchor in (0..dump.len()).step_by(CHUNK_ALIGN) {
        if !looks_like_filler(dump, anchor, layout.pl)
            || !looks_like_filler(dump, anchor + pc, layout.pl)
        {
            continue;
        }
        let Some(q_off) = anchor.checked_sub(pc) else {
            continue;
        };
        let Some(p_off) = q_off.checked_sub(pc) else {
            continue;
        };
        for &dl in &d_lens {
            let Some(d_off) = p_off.checked_sub(round_chunk(dl)) else {
                continue;
            };
            push(&mut out, d_off, dl, p_off, q_off);
            if out.len() >= cfg.max_candidates {
                return out;
            }
        }
    }
    out
}

fn count_ones(x: &BigUint) -> usize {
    x.limbs().iter().map(|l| l.count_ones() as usize).sum()
}

/// The precomputed `k → top window of d̃(k)` table plus its geometry.
struct KTable {
    /// `windows[k - 1]` = bits `[lo, lo + w)` of `⌊(1 + k(n+1))/e⌋`.
    windows: Vec<u128>,
    lo: usize,
    w: usize,
}

impl KTable {
    /// Builds the table. The window sits well above bit `h + 1` (where
    /// `d̃(k) − d < p + q < 2^(h+1)` can disturb bits) so the true `k`
    /// scores zero conflicts except for a vanishingly rare borrow chain.
    fn build(n: &BigUint, e_u64: u64, layout: &Layout) -> Self {
        let lo = (layout.h + 40).min(layout.b.saturating_sub(16));
        let w = (layout.b - lo).min(128);
        let n1 = n + &BigUint::one();
        let mut windows = Vec::with_capacity(e_u64 as usize - 1);
        for k in 1..e_u64 {
            let num = &n1.mul_u64(k) + &BigUint::one();
            let (dt, _) = num.div_rem_u64(e_u64);
            windows.push(window_u128(&dt, lo, w));
        }
        Self { windows, lo, w }
    }

    /// Surviving `k` values for an observed `d` window, ordered by
    /// one-sided conflict count (observed 1 where `d̃` has 0).
    fn filter(&self, obs_d: &BigUint, cfg: &ReconstructConfig) -> Vec<u64> {
        let obs = window_u128(obs_d, self.lo, self.w);
        // Too few surviving 1-bits make every k "consistent"; demand the
        // density a real decayed window keeps even at 75% decay.
        if obs.count_ones() < (self.w / 8) as u32 {
            return Vec::new();
        }
        let mut hits: Vec<(u32, u64)> = self
            .windows
            .iter()
            .enumerate()
            .filter_map(|(i, &dt)| {
                let conflicts = (obs & !dt).count_ones();
                (conflicts <= cfg.k_conflict_tolerance).then_some((conflicts, i as u64 + 1))
            })
            .collect();
        hits.sort_unstable();
        hits.truncate(cfg.max_k_candidates);
        hits.into_iter().map(|(_, k)| k).collect()
    }
}

/// One branch-and-bound run for a fixed `(candidate, k)`.
///
/// Returns `Ok(Some(key))` on verified success, `Ok(None)` when the tree
/// is exhausted without a solution, `Err(nodes)` when the node budget ran
/// out (`nodes` spent either way).
struct Search<'a> {
    n: &'a BigUint,
    e: &'a BigUint,
    /// `e⁻¹ mod 2^h` — masked down per level as needed.
    e_inv: BigUint,
    k: BigUint,
    obs_p: &'a BigUint,
    obs_q: &'a BigUint,
    obs_d: &'a BigUint,
    h: usize,
    nodes: usize,
    budget: usize,
}

impl Search<'_> {
    fn run(mut self) -> Result<(Option<RsaPrivateKey>, usize), usize> {
        // Both primes are odd: bit 0 of p, q (and of d, since e·d odd) is 1.
        let mut stack = vec![(BigUint::one(), BigUint::one(), 1usize)];
        while let Some((p, q, i)) = stack.pop() {
            if i == self.h {
                if let Some(key) = self.verify(&p, &q) {
                    return Ok((Some(key), self.nodes));
                }
                continue;
            }
            self.nodes += 1;
            if self.nodes > self.budget {
                return Err(self.nodes);
            }
            let m = i + 1;
            // p·q ≡ n (mod 2^i) holds by construction; the next bit of the
            // deficit decides the parity constraint p_i ⊕ q_i = t.
            let t = mask_bits(&(&p * &q), m) != mask_bits(self.n, m);
            // An observed 1 forces the bit; an observed 0 leaves it free.
            let p_choices: &[bool] = if self.obs_p.bit(i) { &[true] } else { &[false, true] };
            for &p_i in p_choices {
                let q_i = t ^ p_i;
                if self.obs_q.bit(i) && !q_i {
                    continue;
                }
                let mut np = p.clone();
                if p_i {
                    np.set_bit(i);
                }
                let mut nq = q.clone();
                if q_i {
                    nq.set_bit(i);
                }
                if self.obs_d.bit(i) && !self.d_bit(&np, &nq, m) {
                    continue;
                }
                stack.push((np, nq, i + 1));
            }
        }
        Ok((None, self.nodes))
    }

    /// Bit `m − 1` of `d ≡ e⁻¹·(1 + k·(n + 1 − p − q)) (mod 2^m)`.
    fn d_bit(&self, p: &BigUint, q: &BigUint, m: usize) -> bool {
        let modulus_bit = m; // working modulo 2^m
        let a = mask_bits(&(self.n + &BigUint::one()), modulus_bit);
        let s = mask_bits(&(p + q), modulus_bit);
        // a − s mod 2^m without signed arithmetic: add 2^m first.
        let mut pow2 = BigUint::zero();
        pow2.set_bit(modulus_bit);
        let phi_low = mask_bits(&(&(&a + &pow2) - &s), modulus_bit);
        let inner = &(&self.k * &phi_low) + &BigUint::one();
        let d_low = mask_bits(&(&self.e_inv * &inner), modulus_bit);
        d_low.bit(m - 1)
    }

    /// Exact final check: `p·q = n`, `d = (1 + kφ)/e` divides exactly, and
    /// the full component tuple satisfies the key equation.
    fn verify(&self, p: &BigUint, q: &BigUint) -> Option<RsaPrivateKey> {
        if p.is_one() || q.is_one() || &(p * q) != self.n {
            return None;
        }
        let one = BigUint::one();
        let phi = &(p - &one) * &(q - &one);
        let (d, rem) = (&(&self.k * &phi) + &one).div_rem(self.e);
        if !rem.is_zero() {
            return None;
        }
        // Match the generator's OpenSSL ordering (p > q).
        let (hi, lo) = if p > q { (p, q) } else { (q, p) };
        RsaPrivateKey::from_components(hi, lo, self.e, &d).ok()
    }
}

/// Attempts to rebuild the private key behind `public` from a decayed
/// physical memory image.
///
/// The returned key, when present, is exact — verified against `n` and the
/// key equation — so callers can treat `Some` as full compromise. `None`
/// with [`ReconstructStats::truncated`] set means the search was priced
/// out, the expected outcome above the decay threshold.
#[must_use]
pub fn reconstruct(
    dump: &[u8],
    public: &RsaPublicKey,
    cfg: &ReconstructConfig,
) -> Reconstruction {
    let mut stats = ReconstructStats::default();
    let n = public.n();
    let layout = Layout::of(n);
    // k enumeration needs a small public exponent (the universal F4 case);
    // anything huge would need a different prefilter entirely.
    let Some(e_u64) = public.e().to_u64().filter(|&e| (3..=1 << 20).contains(&e)) else {
        stats.truncated = true;
        return Reconstruction { key: None, stats };
    };

    let candidates = harvest(dump, &layout, cfg);
    stats.candidates = candidates.len();
    if candidates.is_empty() {
        return Reconstruction { key: None, stats };
    }

    let ktable = KTable::build(n, e_u64, &layout);
    let mut pow2h = BigUint::zero();
    pow2h.set_bit(layout.h);
    let e_inv = public
        .e()
        .mod_inverse(&pow2h)
        .expect("e is odd, invertible mod 2^h");

    for cand in &candidates {
        for k in ktable.filter(&cand.obs_d, cfg) {
            if stats.nodes_expanded >= cfg.max_total_nodes {
                stats.truncated = true;
                return Reconstruction { key: None, stats };
            }
            stats.branches_tried += 1;
            let budget = cfg
                .max_nodes_per_branch
                .min(cfg.max_total_nodes - stats.nodes_expanded);
            let search = Search {
                n,
                e: public.e(),
                e_inv: e_inv.clone(),
                k: BigUint::from_u64(k),
                obs_p: &cand.obs_p,
                obs_q: &cand.obs_q,
                obs_d: &cand.obs_d,
                h: layout.h,
                nodes: 0,
                budget,
            };
            match search.run() {
                Ok((Some(key), nodes)) => {
                    stats.nodes_expanded += nodes;
                    return Reconstruction { key: Some(key), stats };
                }
                Ok((None, nodes)) => stats.nodes_expanded += nodes,
                Err(nodes) => {
                    stats.nodes_expanded += nodes;
                    stats.truncated = true;
                }
            }
        }
    }
    Reconstruction { key: None, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsa_repro::material::KeyMaterial;
    use simrng::Rng64;

    fn dump_with_region_layout(key: &RsaPrivateKey, pad: usize) -> Vec<u8> {
        let material = KeyMaterial::from_key(key);
        let mut dump = vec![0u8; pad * PAGE_SIZE];
        let mut off = 2 * PAGE_SIZE;
        for part in [material.d_bytes(), material.p_bytes(), material.q_bytes()] {
            dump[off..off + part.len()].copy_from_slice(part);
            off += part.len();
        }
        dump
    }

    fn decay(dump: &mut [u8], rate: f64, seed: u64) {
        let mut rng = Rng64::new(seed);
        for b in dump.iter_mut() {
            for bit in 0..8 {
                if *b & (1 << bit) != 0 && rng.gen_bool(rate) {
                    *b &= !(1 << bit);
                }
            }
        }
    }

    #[test]
    fn recovers_from_pristine_region_dump() {
        let key = RsaPrivateKey::generate(256, &mut Rng64::new(7));
        let dump = dump_with_region_layout(&key, 8);
        let rec = reconstruct(&dump, &key.public_key(), &ReconstructConfig::default());
        let got = rec.key.expect("pristine dump must reconstruct");
        assert_eq!(got.d(), key.d());
        assert_eq!(got.p(), key.p());
        assert_eq!(got.q(), key.q());
    }

    #[test]
    fn recovers_from_moderately_decayed_dump() {
        let key = RsaPrivateKey::generate(256, &mut Rng64::new(8));
        let mut dump = dump_with_region_layout(&key, 8);
        decay(&mut dump, 0.25, 99);
        let rec = reconstruct(&dump, &key.public_key(), &ReconstructConfig::default());
        assert_eq!(rec.key.expect("25% decay is recoverable").d(), key.d());
    }

    #[test]
    fn heap_layout_with_filler_anchor_is_found() {
        let key = RsaPrivateKey::generate(256, &mut Rng64::new(9));
        let material = KeyMaterial::from_key(&key);
        let mut dump = vec![0u8; 4 * PAGE_SIZE];
        // Bump-heap image: d, p, q, then the three 0xC3 chunks, 16-aligned.
        let mut off = PAGE_SIZE + 48; // 16-aligned, not page-aligned
        for (bytes, filler) in [
            (material.d_bytes(), false),
            (material.p_bytes(), false),
            (material.q_bytes(), false),
            (material.p_bytes(), true),
            (material.q_bytes(), true),
            (material.q_bytes(), true),
        ] {
            if filler {
                dump[off..off + bytes.len()].fill(CRT_FILLER);
            } else {
                dump[off..off + bytes.len()].copy_from_slice(bytes);
            }
            off += round_chunk(bytes.len());
        }
        decay(&mut dump, 0.1, 5);
        let rec = reconstruct(&dump, &key.public_key(), &ReconstructConfig::default());
        assert_eq!(rec.key.expect("heap anchor must be found").n(), key.n());
    }

    #[test]
    fn heavy_decay_fails_cleanly_never_wrongly() {
        let key = RsaPrivateKey::generate(256, &mut Rng64::new(10));
        let mut dump = dump_with_region_layout(&key, 8);
        decay(&mut dump, 0.9, 4);
        let cfg = ReconstructConfig {
            max_total_nodes: 50_000,
            ..ReconstructConfig::default()
        };
        let rec = reconstruct(&dump, &key.public_key(), &cfg);
        assert!(rec.key.is_none(), "90% decay must not reconstruct");
    }

    #[test]
    fn junk_dump_yields_nothing() {
        let key = RsaPrivateKey::generate(256, &mut Rng64::new(11));
        let mut dump = vec![0u8; 8 * PAGE_SIZE];
        let mut rng = Rng64::new(3);
        rng.fill_bytes(&mut dump);
        let rec = reconstruct(&dump, &key.public_key(), &ReconstructConfig::default());
        assert!(rec.key.is_none());
    }

    #[test]
    fn mask_and_window_helpers_agree_with_bit_access() {
        let x = BigUint::from_hex("F0F0F0F0F0F0F0F0AAAA5555DEADBEEF").unwrap();
        for bits in [1, 7, 64, 65, 100, 128, 200] {
            let m = mask_bits(&x, bits);
            for i in 0..bits.min(130) {
                assert_eq!(m.bit(i), x.bit(i), "bit {i} under mask {bits}");
            }
            assert!(m.bit_len() <= bits);
        }
        let w = window_u128(&x, 8, 16);
        for j in 0..16 {
            assert_eq!(w & (1 << j) != 0, x.bit(8 + j));
        }
    }
}
