//! The cold-boot attacker end to end: decayed machine snapshots from
//! `memsim` fed to `keyscan::reconstruct`, table-driven across decay rates.
//!
//! Pins the two halves of the threat model:
//!
//! * below the decay threshold the CRT reconstruction recovers the exact
//!   key even though the exact-pattern scanner finds nothing;
//! * above it the search fails *cleanly* — it never fabricates a key —
//!   and the failure is a budget/statistics story, not a wrong answer.

use keyscan::reconstruct::{reconstruct, ReconstructConfig, Reconstruction};
use keyscan::Scanner;
use memsim::{Kernel, MachineConfig, Pid};
use rsa_repro::material::KeyMaterial;
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;

/// Replays the scattered loader's allocation pattern: six bump-heap chunks
/// holding d, p, q and the three `0xC3`-filled CRT derivatives — the heap
/// image an unprotected victim leaves behind.
fn load_scattered(kernel: &mut Kernel, pid: Pid, material: &KeyMaterial) {
    let parts: [(&[u8], bool); 6] = [
        (material.d_bytes(), false),
        (material.p_bytes(), false),
        (material.q_bytes(), false),
        (material.p_bytes(), true),
        (material.q_bytes(), true),
        (material.q_bytes(), true),
    ];
    for (bytes, filler) in parts {
        let addr = kernel.heap_alloc(pid, bytes.len()).unwrap();
        if filler {
            kernel.write_bytes(pid, addr, &vec![0xC3u8; bytes.len()]).unwrap();
        } else {
            kernel.write_bytes(pid, addr, bytes).unwrap();
        }
    }
}

/// A machine with background noise plus one scattered key image.
fn victim(seed: u64) -> (Kernel, RsaPrivateKey, KeyMaterial) {
    let mut kernel = Kernel::new(MachineConfig::small());
    let mut rng = Rng64::new(seed);
    kernel.age_memory(&mut rng, 0.5);
    let pid = kernel.spawn();
    let key = RsaPrivateKey::generate(256, &mut rng);
    let material = KeyMaterial::from_key(&key);
    load_scattered(&mut kernel, pid, &material);
    (kernel, key, material)
}

fn attempt(kernel: &Kernel, key: &RsaPrivateKey, seed: u64, rate: f64) -> Reconstruction {
    let dump = kernel.snapshot_decayed(seed, rate);
    reconstruct(&dump, &key.public_key(), &ReconstructConfig::default())
}

#[test]
fn recovers_exact_key_below_threshold_across_rates() {
    let (kernel, key, _material) = victim(21);
    for rate in [0.0f64, 0.02, 0.10, 0.25] {
        let rec = attempt(&kernel, &key, 0xB00B5EED ^ rate.to_bits(), rate);
        let got = rec
            .key
            .unwrap_or_else(|| panic!("rate {rate} must reconstruct (stats {:?})", rec.stats));
        // Exact, not merely consistent: every component matches.
        assert_eq!(got.n(), key.n());
        assert_eq!(got.d(), key.d());
        assert_eq!(got.p(), key.p());
        assert_eq!(got.q(), key.q());
        assert_eq!(got.dp(), key.dp());
        assert_eq!(got.dq(), key.dq());
        assert_eq!(got.qinv(), key.qinv());
    }
}

#[test]
fn reconstruction_beats_the_exact_scanner_on_decayed_dumps() {
    let (kernel, key, material) = victim(22);
    let dump = kernel.snapshot_decayed(77, 0.10);
    // The paper's attacker needs a byte-perfect copy; 10% decay leaves none.
    let scanner = Scanner::from_material(&material);
    assert!(
        !scanner.dump_compromises_key(&dump),
        "exact scan must find nothing in a decayed image"
    );
    // The arithmetic attacker still wins.
    let rec = reconstruct(&dump, &key.public_key(), &ReconstructConfig::default());
    assert_eq!(rec.key.expect("reconstruction succeeds").d(), key.d());
}

#[test]
fn fails_cleanly_above_threshold_never_wrong() {
    let (kernel, key, _material) = victim(23);
    // Keep the budget modest so the high-decay cases price out quickly.
    let cfg = ReconstructConfig {
        max_total_nodes: 300_000,
        ..ReconstructConfig::default()
    };
    for rate in [0.75, 0.9] {
        for seed in [1u64, 2, 3] {
            let dump = kernel.snapshot_decayed(seed, rate);
            let rec = reconstruct(&dump, &key.public_key(), &cfg);
            // `Some` would have been verified exact; at these rates the only
            // acceptable outcome is an honest failure.
            assert!(
                rec.key.is_none(),
                "rate {rate} seed {seed}: reconstruction must fail, not guess"
            );
        }
    }
}

#[test]
fn reconstruction_is_deterministic_per_seed() {
    let (kernel, key, _material) = victim(24);
    let a = attempt(&kernel, &key, 5, 0.15);
    let b = attempt(&kernel, &key, 5, 0.15);
    assert_eq!(a.stats, b.stats, "same dump must search identically");
    assert_eq!(a.key.is_some(), b.key.is_some());
    // Pinned expectation for this seeded case: success with a bounded search.
    assert!(a.key.is_some(), "15% decay on seed 5 reconstructs");
    assert!(a.stats.candidates > 0);
    assert!(!a.stats.truncated);
}

#[test]
fn wrong_public_key_reconstructs_nothing() {
    let (kernel, key, _material) = victim(25);
    let other = RsaPrivateKey::generate(256, &mut Rng64::new(4242));
    assert_ne!(other.n(), key.n());
    let dump = kernel.snapshot_decayed(9, 0.05);
    let rec = reconstruct(&dump, &other.public_key(), &ReconstructConfig::default());
    assert!(
        rec.key.is_none(),
        "a dump of someone else's key must not satisfy this modulus"
    );
}
