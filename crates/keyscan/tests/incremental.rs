//! Differential suite for [`IncrementalScanner`]: after *any* sequence of
//! kernel mutations — spawns, writes, frees, forks, COW breaks, evictions,
//! injected faults — the incremental scan must be **bit-identical** to the
//! full-scan oracle `Scanner::scan_kernel`, while the cache retains zero
//! key-derived bytes.

use keyscan::{IncrementalScanner, Scanner};
use memsim::{FaultPlan, Kernel, MachineConfig, Pid, VAddr};
use rsa_repro::{material::KeyMaterial, RsaPrivateKey};
use simrng::Rng64;

fn material_and_scanner(seed: u64) -> (KeyMaterial, Scanner) {
    let key = RsaPrivateKey::generate(128, &mut Rng64::new(seed));
    let material = KeyMaterial::from_key(&key);
    let scanner = Scanner::from_material(&material);
    (material, scanner)
}

/// Asserts incremental == oracle on the current snapshot, and that the
/// incremental report is internally identical (hits, counts, locations).
fn check(inc: &mut IncrementalScanner, oracle: &Scanner, k: &Kernel) {
    let fast = inc.scan(k);
    let full = oracle.scan_kernel(k);
    assert_eq!(fast, full);
}

#[test]
fn incremental_equals_oracle_across_scripted_lifecycle() {
    let (material, scanner) = material_and_scanner(7);
    let oracle = Scanner::from_material(&material);
    let mut inc = IncrementalScanner::new(scanner);
    let mut k = Kernel::new(MachineConfig::small());
    check(&mut inc, &oracle, &k);

    // Plant the key, fork (COW), break the sharing, free, re-use.
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, material.d_bytes().len()).unwrap();
    k.write_bytes(parent, buf, material.d_bytes()).unwrap();
    check(&mut inc, &oracle, &k);

    let child = k.fork(parent).unwrap();
    check(&mut inc, &oracle, &k);

    // Child write breaks COW: a second physical copy appears.
    k.write_bytes(child, buf, material.d_bytes()).unwrap();
    check(&mut inc, &oracle, &k);

    // Exit without clearing: copies migrate to unallocated (state change
    // with *no* byte change — the attribution-refresh path).
    k.exit(child).unwrap();
    check(&mut inc, &oracle, &k);
    k.exit(parent).unwrap();
    check(&mut inc, &oracle, &k);

    // A new process reuses the dirty frames.
    let p2 = k.spawn();
    let buf2 = k.heap_alloc(p2, 64 * 1024).unwrap();
    k.write_bytes(p2, buf2, &vec![0x5A; 64 * 1024]).unwrap();
    check(&mut inc, &oracle, &k);

    // The incremental path must actually have skipped most frames.
    let stats = inc.stats();
    assert!(stats.scans >= 7);
    assert!(
        stats.frames_rescanned < stats.frames_total / 2,
        "no skipping happened: {stats:?}"
    );
}

#[test]
fn incremental_equals_oracle_on_random_mutation_sequences() {
    let (material, _scanner) = material_and_scanner(11);
    let oracle = Scanner::from_material(&material);
    for round in 0..6u64 {
        let mut rng = Rng64::new(0x1234 + round);
        let mut k = Kernel::new(MachineConfig::small());
        let mut inc = IncrementalScanner::new(oracle.fork());
        let mut live: Vec<(Pid, Vec<VAddr>)> = Vec::new();
        for step in 0..120 {
            match rng.gen_below(10) {
                0 => {
                    let pid = k.spawn();
                    live.push((pid, Vec::new()));
                }
                1 | 2 => {
                    // Allocate and write a key fragment or noise.
                    if let Some(i) = (!live.is_empty()).then(|| rng.gen_index(live.len())) {
                        let (pid, bufs) = &mut live[i];
                        let pat = [material.d_bytes(), material.p_bytes(), material.q_bytes()]
                            [rng.gen_index(3)];
                        let take = 1 + rng.gen_index(pat.len());
                        if let Ok(b) = k.heap_alloc(*pid, pat.len()) {
                            let _ = k.write_bytes(*pid, b, &pat[..take]);
                            bufs.push(b);
                        }
                    }
                }
                3 => {
                    // Free a buffer (bytes stay behind — the paper's hazard).
                    if let Some(i) = (!live.is_empty()).then(|| rng.gen_index(live.len())) {
                        let (pid, bufs) = &mut live[i];
                        if !bufs.is_empty() {
                            let b = bufs.swap_remove(rng.gen_index(bufs.len()));
                            let _ = k.heap_free(*pid, b);
                        }
                    }
                }
                4 => {
                    // Fork: COW-share everything.
                    if let Some(i) = (!live.is_empty()).then(|| rng.gen_index(live.len())) {
                        let (pid, bufs) = live[i].clone();
                        if let Ok(c) = k.fork(pid) {
                            live.push((c, bufs));
                        }
                    }
                }
                5 => {
                    // Write through a possibly-COW page: break sharing.
                    if let Some(i) = (!live.is_empty()).then(|| rng.gen_index(live.len())) {
                        let (pid, bufs) = &live[i];
                        if !bufs.is_empty() {
                            let b = bufs[rng.gen_index(bufs.len())];
                            let _ = k.write_bytes(*pid, b, material.q_bytes());
                        }
                    }
                }
                6 => {
                    // Exit a process entirely.
                    if !live.is_empty() {
                        let (pid, _) = live.swap_remove(rng.gen_index(live.len()));
                        let _ = k.exit(pid);
                    }
                }
                7 => {
                    // Kernel-side traffic: tty input leaves slab residue.
                    let _ = k.tty_input(material.p_bytes());
                    let _ = k.slab_shrink();
                }
                8 => {
                    // File traffic through the page cache.
                    if let Some(&(pid, _)) = live.first() {
                        let fid = k.create_file("noise.pem", material.d_bytes());
                        let _ = k.read_file(pid, fid, rng.gen_bool(0.5));
                        if rng.gen_bool(0.5) {
                            k.evict_file_cache(fid, rng.gen_bool(0.5));
                        }
                    }
                }
                _ => {
                    // Memory pressure.
                    let _ = k.swap_out_pressure(rng.gen_index(4));
                    k.reclaim_page_cache(rng.gen_index(4));
                }
            }
            // Scan at random points, not just at quiescence.
            if step % 7 == 0 || rng.gen_bool(0.15) {
                check(&mut inc, &oracle, &k);
            }
        }
        check(&mut inc, &oracle, &k);
    }
}

#[test]
fn incremental_equals_oracle_under_injected_faults() {
    let (material, scanner) = material_and_scanner(13);
    let oracle = Scanner::from_material(&material);
    for fault_index in [0u64, 3, 7, 15, 40] {
        let mut k = Kernel::new(MachineConfig::small());
        k.install_fault_plan(FaultPlan::new().fail_at_index(fault_index));
        let mut inc = IncrementalScanner::new(scanner.fork());
        let parent = k.spawn();
        // Drive a workload where every fallible op may be the failed one;
        // errors are shed, and the scan must stay exact either way.
        let mut bufs = Vec::new();
        for i in 0..6 {
            if let Ok(b) = k.heap_alloc(parent, material.d_bytes().len()) {
                if k.write_bytes(parent, b, material.d_bytes()).is_ok() {
                    bufs.push(b);
                }
            }
            if i % 2 == 0 {
                if let Ok(c) = k.fork(parent) {
                    let _ = k.write_bytes(c, *bufs.first().unwrap_or(&VAddr(0)), b"xxxxxxxx");
                    let _ = k.exit(c);
                }
            }
            check(&mut inc, &oracle, &k);
        }
        for b in bufs {
            let _ = k.heap_free(parent, b);
            check(&mut inc, &oracle, &k);
        }
        k.clear_fault_plan();
        let _ = k.exit(parent);
        check(&mut inc, &oracle, &k);
    }
}

#[test]
fn fork_carries_the_warm_cache_across_kernel_clones() {
    let (material, scanner) = material_and_scanner(17);
    let oracle = Scanner::from_material(&material);
    let mut inc = IncrementalScanner::new(scanner);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.d_bytes()).unwrap();
    check(&mut inc, &oracle, &k);

    // Clone the machine twice and diverge the clones; each clone gets its
    // own scanner fork and must stay exact on its own lineage.
    let mut k1 = k.clone();
    let mut k2 = k.clone();
    let mut inc1 = inc.fork();
    let mut inc2 = inc.fork();
    k1.write_bytes(pid, buf, material.p_bytes()).unwrap();
    k2.exit(pid).unwrap();
    check(&mut inc1, &oracle, &k1);
    check(&mut inc2, &oracle, &k2);
    check(&mut inc, &oracle, &k);

    // Warm forks skip clean frames: one dirtied frame, not a full rescan.
    let s1 = inc1.stats();
    assert_eq!(s1.scans, 1);
    assert!(
        s1.frames_rescanned <= 4,
        "fork should only rescan the diverged frames: {s1:?}"
    );
}

#[test]
fn scanner_cache_retains_no_key_bytes() {
    let (material, scanner) = material_and_scanner(19);
    let oracle = Scanner::from_material(&material);
    let mut inc = IncrementalScanner::new(scanner);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    for pat in [material.d_bytes(), material.p_bytes(), material.q_bytes()] {
        let b = k.heap_alloc(pid, pat.len()).unwrap();
        k.write_bytes(pid, b, pat).unwrap();
        let report = inc.scan(&k);
        assert!(report.compromised(), "keys are in memory — hits must exist");
    }

    // The cache knows *where* the keys are, but must not know their bytes:
    // scanning the serialized cache with the very scanner that filled it
    // (and with a generous 8-byte partial threshold) finds nothing.
    let audit = inc.cache_audit_bytes();
    assert!(!audit.is_empty());
    assert_eq!(oracle.count_matches(&audit), 0, "cache holds full key bytes");
    assert!(
        oracle.scan_bytes_partial(&audit, 8).is_empty(),
        "cache holds key fragments"
    );
}

#[test]
fn mismatched_machine_resets_instead_of_lying() {
    let (material, scanner) = material_and_scanner(23);
    let oracle = Scanner::from_material(&material);
    let mut inc = IncrementalScanner::new(scanner);

    // Scan machine A (with a key), then switch to a *different* machine B.
    let mut a = Kernel::new(MachineConfig::small());
    let pid = a.spawn();
    let buf = a.heap_alloc(pid, material.d_bytes().len()).unwrap();
    a.write_bytes(pid, buf, material.d_bytes()).unwrap();
    check(&mut inc, &oracle, &a);

    let b = Kernel::new(MachineConfig::small());
    // B is freshly booted: clock 0 < A's clock → cache must reset, so the
    // stale hit from A must not survive into B's report.
    check(&mut inc, &oracle, &b);

    // And back to A (clock now "ahead" of B's): still exact.
    check(&mut inc, &oracle, &a);
}

#[test]
fn threaded_incremental_scans_are_bit_identical_at_every_width() {
    // One serial and three threaded incremental scanners driven through the
    // same mutation sequence must produce bit-identical reports at every
    // step — and all must equal the full-scan oracle.
    let (material, _) = material_and_scanner(29);
    let oracle = Scanner::from_material(&material);
    let mut scanners: Vec<IncrementalScanner> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            IncrementalScanner::new(Scanner::from_material(&material)).with_threads(t)
        })
        .collect();

    let mut k = Kernel::new(MachineConfig::small());
    let mut rng = Rng64::new(0x7EAD);
    let pid = k.spawn();
    let mut bufs: Vec<VAddr> = Vec::new();

    let mut step = |k: &Kernel, scanners: &mut Vec<IncrementalScanner>, what: &str| {
        let full = oracle.scan_kernel(k);
        for inc in scanners.iter_mut() {
            let t = inc.threads();
            assert_eq!(inc.scan(k), full, "threads {t} diverged after {what}");
        }
    };

    step(&k, &mut scanners, "boot");
    for round in 0..12 {
        match rng.next_u64() % 4 {
            0 => {
                let sz = 4096 * (1 + (rng.next_u64() % 8) as usize);
                if let Ok(b) = k.heap_alloc(pid, sz) {
                    bufs.push(b);
                }
            }
            1 => {
                if let Some(&b) = bufs.last() {
                    let _ = k.write_bytes(pid, b, material.d_bytes());
                }
            }
            2 => {
                if let Some(&b) = bufs.last() {
                    let _ = k.write_bytes(pid, b, &[0u8; 4096]);
                }
            }
            _ => {
                if bufs.len() > 1 {
                    let b = bufs.remove(0);
                    let _ = k.heap_free(pid, b);
                }
            }
        }
        step(&k, &mut scanners, &format!("round {round}"));
    }
}
