//! Differential property suite for the fast multi-pattern core: on random
//! haystacks with planted, truncated, and overlapping patterns, the
//! optimized skip-loop scan must agree exactly with the naive per-offset
//! oracle — hit for hit, in the same order.

use keyscan::Scanner;
use rsa_repro::material::Pattern;
use simrng::Rng64;

fn pat(name: &str, bytes: &[u8]) -> Pattern {
    Pattern::new(name, bytes.to_vec())
}

/// Random bytes drawn from a small alphabet, so pattern fragments collide
/// with the background often enough to exercise the verify path.
fn noisy_haystack(rng: &mut Rng64, len: usize, alphabet: u8) -> Vec<u8> {
    (0..len).map(|_| (rng.next_u64() % alphabet as u64) as u8).collect()
}

fn random_patterns(rng: &mut Rng64, alphabet: u8) -> Vec<Pattern> {
    let n = 1 + (rng.next_u64() % 4) as usize;
    (0..n)
        .map(|i| {
            let len = 8 + (rng.next_u64() % 25) as usize;
            let bytes = noisy_haystack(rng, len, alphabet);
            Pattern::new(&format!("p{i}"), bytes)
        })
        .collect()
}

#[test]
fn fuzz_scan_bytes_matches_naive_oracle() {
    let mut rng = Rng64::new(0xD1FF);
    for round in 0..200 {
        // Small alphabets make overlaps and near-misses common.
        let alphabet = [2u8, 3, 5, 251][round % 4];
        let pats = random_patterns(&mut rng, alphabet);
        let scanner = Scanner::new(pats.iter().map(Pattern::clone_secret).collect());
        let hay_len = 200 + (rng.next_u64() % 2000) as usize;
        let mut hay = noisy_haystack(&mut rng, hay_len, alphabet);
        // Plant full copies, truncated prefixes, and suffix fragments at
        // random positions (overwriting whatever is there).
        for _ in 0..(rng.next_u64() % 6) {
            let p = &pats[(rng.next_u64() % pats.len() as u64) as usize].bytes;
            let keep = match rng.next_u64() % 3 {
                0 => p.len(),                                  // full copy
                1 => 1 + (rng.next_u64() % p.len() as u64) as usize, // prefix
                _ => p.len() - (rng.next_u64() % p.len() as u64) as usize, // shorter full-ish
            };
            if hay.len() > keep {
                let at = (rng.next_u64() % (hay.len() - keep) as u64) as usize;
                hay[at..at + keep].copy_from_slice(&p[..keep]);
            }
        }
        let fast = scanner.scan_bytes(&hay);
        let naive = scanner.scan_bytes_naive(&hay);
        assert_eq!(fast, naive, "round {round}");
        assert_eq!(scanner.count_matches(&hay), naive.len(), "round {round}");
        assert_eq!(scanner.dump_compromises_key(&hay), !naive.is_empty(), "round {round}");
    }
}

#[test]
fn overlapping_and_self_overlapping_patterns_agree_with_oracle() {
    // Periodic patterns over periodic memory: the worst case for shift
    // tables (every byte is a trigger) and for missed-overlap bugs.
    let scanner = Scanner::new(vec![
        pat("aa", b"AAAAAAAA"),
        pat("ab", b"AAAAAAAB"),
        pat("ba", b"BAAAAAAA"),
    ]);
    let mut hay = vec![b'A'; 300];
    hay[100] = b'B';
    hay[250] = b'B';
    let fast = scanner.scan_bytes(&hay);
    let naive = scanner.scan_bytes_naive(&hay);
    assert_eq!(fast, naive);
    assert!(fast.len() > 200, "self-overlapping runs must all be reported");
}

#[test]
fn matches_straddling_chunk_ends_are_found() {
    // Patterns planted at every alignment near the start and end of the
    // haystack, where the skip loop's window arithmetic is most delicate.
    let p = b"EDGECASE";
    let scanner = Scanner::new(vec![pat("e", p)]);
    for at in [0usize, 1, 2, 7, 8] {
        let mut hay = vec![0u8; 64];
        hay[at..at + p.len()].copy_from_slice(p);
        assert_eq!(scanner.scan_bytes(&hay), scanner.scan_bytes_naive(&hay), "start {at}");
        assert_eq!(scanner.count_matches(&hay), 1, "start {at}");
    }
    for end_gap in 0usize..4 {
        let mut hay = vec![0u8; 64];
        let at = hay.len() - p.len() - end_gap;
        hay[at..at + p.len()].copy_from_slice(p);
        assert_eq!(scanner.count_matches(&hay), 1, "end gap {end_gap}");
    }
    // Haystack shorter than the window: no match, no panic.
    assert_eq!(scanner.count_matches(b"EDGE"), 0);
    assert_eq!(scanner.count_matches(b""), 0);
}

// ---------------------------------------------------------------------
// SWAR prefilter and sharded scans vs. the same oracle
// ---------------------------------------------------------------------

/// Both match cores — forced explicitly, bypassing the trigger-count
/// dispatch — plus the sharded splitter at several widths, against naive.
fn assert_all_cores_agree(scanner: &Scanner, hay: &[u8], ctx: &str) {
    let naive = scanner.scan_bytes_naive(hay);
    assert_eq!(scanner.scan_bytes_swar(hay), naive, "swar vs naive: {ctx}");
    assert_eq!(scanner.scan_bytes_horspool(hay), naive, "horspool vs naive: {ctx}");
    assert_eq!(scanner.scan_bytes(hay), naive, "dispatch vs naive: {ctx}");
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(
            scanner.scan_bytes_sharded(hay, threads),
            naive,
            "sharded x{threads} vs naive: {ctx}"
        );
        assert_eq!(
            scanner.count_matches_sharded(hay, threads),
            naive.len(),
            "sharded count x{threads}: {ctx}"
        );
    }
}

#[test]
fn fuzz_swar_and_sharded_match_naive_oracle() {
    let mut rng = Rng64::new(0x5AAE);
    for round in 0..120 {
        let alphabet = [2u8, 3, 5, 251][round % 4];
        let pats = random_patterns(&mut rng, alphabet);
        let scanner = Scanner::new(pats.iter().map(Pattern::clone_secret).collect());
        let hay_len = 200 + (rng.next_u64() % 3000) as usize;
        let mut hay = noisy_haystack(&mut rng, hay_len, alphabet);
        for _ in 0..(rng.next_u64() % 6) {
            let p = &pats[(rng.next_u64() % pats.len() as u64) as usize].bytes;
            if hay.len() > p.len() {
                let at = (rng.next_u64() % (hay.len() - p.len()) as u64) as usize;
                hay[at..at + p.len()].copy_from_slice(p);
            }
        }
        assert_all_cores_agree(&scanner, &hay, &format!("round {round}"));
    }
}

#[test]
fn swar_on_repetitive_memory_agrees_with_oracle() {
    // All-0xAA memory with a pattern that *ends* in 0xAA: every SWAR block
    // lights up every lane, maximizing prefilter false-positive pressure and
    // borrow-propagation artifacts. Must still be hit-for-hit identical.
    let scanner = Scanner::new(vec![
        pat("tail_aa", b"BAAAAAAA\xAA"),
        pat("all_aa", b"\xAA\xAA\xAA\xAA\xAA\xAA\xAA\xAA"),
    ]);
    let mut hay = vec![0xAAu8; 4096];
    hay[1000] = b'B';
    hay[2048] = b'B';
    assert_all_cores_agree(&scanner, &hay, "0xAA memory");
    // And the degenerate case: memory that is *entirely* matches.
    let hay2 = vec![0xAAu8; 4096];
    assert_all_cores_agree(&scanner, &hay2, "pure 0xAA memory");
}

#[test]
fn zero_trigger_byte_disables_zero_skip_without_missing_hits() {
    // A pattern ending in 0x00 makes 0x00 a trigger byte, so the all-zero
    // 64-byte fast-reject must stay off; matches buried in zero memory must
    // all be found.
    let scanner = Scanner::new(vec![pat("zt", b"KEY\x00\x00\x00\x00\x00")]);
    let mut hay = vec![0u8; 8192];
    for at in [0usize, 60, 68, 124, 4000, 8184] {
        hay[at..at + 8].copy_from_slice(b"KEY\x00\x00\x00\x00\x00");
    }
    assert_all_cores_agree(&scanner, &hay, "zero trigger byte");
    assert_eq!(scanner.count_matches(&hay), 6);
}

#[test]
fn near_miss_haystacks_produce_no_false_hits() {
    // Memory saturated with 7-of-8-byte near misses of the pattern: the
    // prefilter fires constantly but the verifier must reject every one.
    let p = b"SECRETK1";
    let scanner = Scanner::new(vec![pat("nm", p)]);
    let mut hay = Vec::with_capacity(8 * 1024);
    for i in 0..1024usize {
        let mut copy = *p;
        copy[i % 8] ^= 0xFF; // corrupt a rotating byte
        hay.extend_from_slice(&copy);
    }
    assert_all_cores_agree(&scanner, &hay, "near misses");
    assert_eq!(scanner.count_matches(&hay), 0);
    // Now repair one copy; exactly one hit, found by every core.
    hay[512 * 8..512 * 8 + 8].copy_from_slice(p);
    assert_eq!(scanner.count_matches(&hay), 1);
    assert_all_cores_agree(&scanner, &hay, "one repaired");
}

#[test]
fn sharded_scan_finds_matches_straddling_every_chunk_boundary() {
    // With 4 threads over 4096 bytes the chunk cuts land at 1024/2048/3072.
    // Plant a match straddling each cut and one at the very end.
    let p = b"STRADDLE";
    let scanner = Scanner::new(vec![pat("s", p)]);
    let mut hay = vec![0u8; 4096];
    for at in [1020usize, 2044, 3068, 4088] {
        hay[at..at + 8].copy_from_slice(p);
    }
    for threads in [1usize, 2, 3, 4, 8, 64] {
        let hits = scanner.scan_bytes_sharded(&hay, threads);
        let offs: Vec<usize> = hits.iter().map(|h| h.offset).collect();
        assert_eq!(offs, vec![1020, 2044, 3068, 4088], "threads {threads}");
    }
    assert_all_cores_agree(&scanner, &hay, "straddles");
}

// ---------------------------------------------------------------------
// scan_bytes_partial: linear-time matching statistics vs. a naive oracle
// ---------------------------------------------------------------------

/// The partial-scan oracle: per-offset longest-common-prefix computed the
/// obvious O(n·m) way, with the same run-head reporting rule the production
/// path documents (full matches always; non-full prefixes only where the
/// previous offset was below threshold).
fn partial_oracle(pats: &[Pattern], hay: &[u8], min_len: usize) -> Vec<(usize, usize, usize, bool)> {
    let mut out = Vec::new();
    for (pi, p) in pats.iter().enumerate() {
        let clamp = min_len.min(p.bytes.len());
        let mut prev = 0usize;
        for i in 0..hay.len() {
            let mut k = 0;
            while k < p.bytes.len() && i + k < hay.len() && hay[i + k] == p.bytes[k] {
                k += 1;
            }
            let full = k == p.bytes.len();
            if k >= clamp && (full || prev < clamp) {
                out.push((pi, i, k, full));
            }
            prev = k;
        }
    }
    out.sort_by_key(|&(pi, i, _, _)| (i, pi));
    out
}

#[test]
fn fuzz_partial_scan_matches_quadratic_oracle() {
    let mut rng = Rng64::new(0xBEEF);
    for round in 0..80 {
        let alphabet = [2u8, 3, 4][round % 3];
        let pats = random_patterns(&mut rng, alphabet);
        let scanner = Scanner::new(pats.iter().map(Pattern::clone_secret).collect());
        let hay_len = 150 + (rng.next_u64() % 600) as usize;
        let hay = noisy_haystack(&mut rng, hay_len, alphabet);
        let min_len = 4 + (rng.next_u64() % 10) as usize;
        let got: Vec<_> = scanner
            .scan_bytes_partial(&hay, min_len)
            .into_iter()
            .map(|h| (h.pattern, h.offset, h.matched_len, h.full))
            .collect();
        assert_eq!(got, partial_oracle(&pats, &hay, min_len), "round {round}");
    }
}

#[test]
fn pathological_repetitive_memory_stays_linear() {
    use std::time::Instant;
    // 4 MB of 0xAA vs. a 2 KB pattern that is 0xAA except its final byte:
    // the old per-offset while loop did ~2047 compares at *every* offset
    // (O(n·m) ≈ 8.6e9 steps) and flooded the result with one overlapping
    // PartialHit per offset. The matching-statistics scan does O(n + m)
    // work and reports one run-head hit.
    let mut bytes = vec![0xAAu8; 2048];
    *bytes.last_mut().unwrap() = 0xBB;
    let scanner = Scanner::new(vec![pat("worst", &bytes)]);
    let hay = vec![0xAAu8; 4 << 20];

    let start = Instant::now();
    let hits = scanner.scan_bytes_partial(&hay, 20);
    let elapsed = start.elapsed();

    // One suppressed run: the head at offset 0 (2047 matching bytes), no
    // full matches (the 0xBB never appears).
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].offset, 0);
    assert_eq!(hits[0].matched_len, 2047);
    assert!(!hits[0].full);
    // Generous wall-clock sanity bound (debug builds on slow containers):
    // the quadratic path took minutes; linear is well under this.
    assert!(
        elapsed.as_secs() < 30,
        "partial scan took {elapsed:?} — quadratic blow-up is back"
    );

    // Same memory, but with full copies planted: every full match is still
    // reported individually even inside the suppressed run.
    let mut hay2 = vec![0xAAu8; 1 << 20];
    for at in [0usize, 4096, 4097, 500_000] {
        hay2[at..at + bytes.len()].copy_from_slice(&bytes);
    }
    // (The 4097 plant overwrites the tail of the 4096 one, killing it.)
    let fulls: Vec<usize> = scanner
        .scan_bytes_partial(&hay2, 20)
        .into_iter()
        .filter(|h| h.full)
        .map(|h| h.offset)
        .collect();
    assert_eq!(fulls, vec![0, 4097, 500_000]);
    let direct: Vec<usize> = scanner.scan_bytes(&hay2).into_iter().map(|h| h.offset).collect();
    assert_eq!(fulls, direct);
}
