//! Integration tests: scanner over the simulated kernel, reproducing the
//! classification and attribution behaviours of Section 3.

use keyscan::Scanner;
use memsim::{Kernel, KernelPolicy, MachineConfig};
use rsa_repro::{material::KeyMaterial, RsaPrivateKey};
use simrng::Rng64;

fn key_and_scanner(seed: u64) -> (RsaPrivateKey, KeyMaterial, Scanner) {
    let key = RsaPrivateKey::generate(128, &mut Rng64::new(seed));
    let material = KeyMaterial::from_key(&key);
    let scanner = Scanner::from_material(&material);
    (key, material, scanner)
}

#[test]
fn clean_machine_has_no_hits() {
    let (_, _, scanner) = key_and_scanner(1);
    let k = Kernel::new(MachineConfig::small());
    let report = scanner.scan_kernel(&k);
    assert_eq!(report.total(), 0);
    assert!(!report.compromised());
}

#[test]
fn allocated_hit_attributed_to_owner() {
    let (_, material, scanner) = key_and_scanner(2);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.p_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.p_bytes()).unwrap();

    let report = scanner.scan_kernel(&k);
    assert_eq!(report.total(), 1);
    let hit = &report.hits()[0];
    assert!(hit.allocated);
    assert_eq!(hit.owners, vec![pid]);
    assert_eq!(hit.name, "p");
    assert_eq!(hit.state, memsim::FrameState::Anon);
}

#[test]
fn shared_cow_page_lists_all_owners() {
    let (_, material, scanner) = key_and_scanner(3);
    let mut k = Kernel::new(MachineConfig::small());
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, material.q_bytes().len()).unwrap();
    k.write_bytes(parent, buf, material.q_bytes()).unwrap();
    let c1 = k.fork(parent).unwrap();
    let c2 = k.fork(parent).unwrap();

    let report = scanner.scan_kernel(&k);
    assert_eq!(report.total(), 1, "COW: still a single physical copy");
    let owners = &report.hits()[0].owners;
    assert_eq!(owners.len(), 3);
    for p in [parent, c1, c2] {
        assert!(owners.contains(&p));
    }
}

#[test]
fn unallocated_hit_after_exit() {
    let (_, material, scanner) = key_and_scanner(4);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.d_bytes()).unwrap();
    k.exit(pid).unwrap();

    let report = scanner.scan_kernel(&k);
    assert_eq!(report.total(), 1);
    assert_eq!(report.unallocated(), 1);
    assert_eq!(report.allocated(), 0);
    assert!(report.hits()[0].owners.is_empty());
}

#[test]
fn hardened_kernel_shows_no_unallocated_hits() {
    let (_, material, scanner) = key_and_scanner(5);
    let mut k = Kernel::new(MachineConfig::small().with_policy(KernelPolicy::hardened()));
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.d_bytes()).unwrap();
    k.exit(pid).unwrap();
    assert_eq!(scanner.scan_kernel(&k).total(), 0);
}

#[test]
fn pem_in_page_cache_is_counted_as_allocated() {
    let (key, _, scanner) = key_and_scanner(6);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let fid = k.create_file("/etc/ssh/host_key.pem", key.to_pem().as_bytes());
    let (_buf, _len) = k.read_file(pid, fid, false).unwrap();

    let report = scanner.scan_kernel(&k);
    // PEM appears twice (cache + user buffer)...
    let pem_hits: Vec<_> = report.hits().iter().filter(|h| h.name == "pem").collect();
    assert_eq!(pem_hits.len(), 2);
    assert!(pem_hits.iter().all(|h| h.allocated));
    // ...one of them in the page cache with no process owner.
    assert!(pem_hits
        .iter()
        .any(|h| h.state == memsim::FrameState::PageCache && h.owners.is_empty()));
}

#[test]
fn by_pattern_counts_are_per_component() {
    let (_, material, scanner) = key_and_scanner(7);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    // Two copies of p, one of q.
    for bytes in [material.p_bytes(), material.p_bytes(), material.q_bytes()] {
        let buf = k.heap_alloc(pid, bytes.len()).unwrap();
        k.write_bytes(pid, buf, bytes).unwrap();
    }
    let report = scanner.scan_kernel(&k);
    let counts = report.by_pattern();
    // Order: d, p, q, pem.
    assert_eq!(counts, vec![0, 2, 1, 0]);
    assert_eq!(report.total(), 3);
}

#[test]
fn locations_report_physical_offsets() {
    let (_, material, scanner) = key_and_scanner(8);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.d_bytes()).unwrap();
    let report = scanner.scan_kernel(&k);
    let locs = report.locations();
    assert_eq!(locs.len(), 1);
    assert!(locs[0].0 < k.phys().len());
    assert!(locs[0].1, "allocated");
}

#[test]
fn scan_finds_match_spanning_page_boundary() {
    let (_, material, scanner) = key_and_scanner(9);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    // Heap pages are physically contiguous only by accident; construct the
    // straddle deliberately through a multi-page allocation on fresh frames
    // (watermark allocation is sequential, so frames are adjacent).
    let buf = k.heap_alloc(pid, 2 * memsim::PAGE_SIZE).unwrap();
    let off = memsim::PAGE_SIZE as u64 - (material.q_bytes().len() / 2) as u64;
    k.write_bytes(pid, buf.add(off), material.q_bytes()).unwrap();
    let report = scanner.scan_kernel(&k);
    assert_eq!(report.total(), 1, "straddling copy must still be found");
}

#[test]
fn swap_dump_is_scannable() {
    let (_, material, scanner) = key_and_scanner(10);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.d_bytes()).unwrap();
    k.swap_out_pressure(usize::MAX).unwrap();
    assert!(scanner.dump_compromises_key(k.swap_bytes()));
}

#[test]
fn proc_report_matches_lkm_format() {
    let (_, material, scanner) = key_and_scanner(11);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.q_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.q_bytes()).unwrap();

    let report = scanner.scan_kernel(&k);
    let text = scanner.proc_report(&report);
    // The LKM's header, typo preserved, then one attribution line.
    assert!(text.starts_with("Request recieved\n"));
    assert!(text.contains("Full match found for q of size"));
    assert!(text.contains(&format!("processes: {}", pid.0)));
    // Offsets are zero-padded like the LKM's %09u / %06u.
    let line = text.lines().nth(1).unwrap();
    let at = line.split("at: ").nth(1).unwrap();
    assert_eq!(at.split(',').next().unwrap().len(), 9);

    // Free-page hits print "none".
    k.exit(pid).unwrap();
    let report = scanner.scan_kernel(&k);
    let text = scanner.proc_report(&report);
    assert!(text.contains("processes: none"), "{text}");
}

#[test]
fn proc_report_prints_zero_for_kernel_owned_pages() {
    let (key, _, scanner) = key_and_scanner(12);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let fid = k.create_file("key.pem", key.to_pem().as_bytes());
    k.read_file(pid, fid, false).unwrap();
    let report = scanner.scan_kernel(&k);
    let text = scanner.proc_report(&report);
    // The page-cache copy has no process owner: the LKM prints "0".
    assert!(text.lines().any(|l| l.ends_with("processes: 0")), "{text}");
}

#[test]
fn diff_detects_the_figure5_transitions() {
    let (_, material, scanner) = key_and_scanner(13);
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, material.d_bytes().len()).unwrap();
    k.write_bytes(pid, buf, material.d_bytes()).unwrap();
    let t0 = scanner.scan_kernel(&k);

    // Load appears: a second copy in a new process.
    let pid2 = k.spawn();
    let buf2 = k.heap_alloc(pid2, material.p_bytes().len()).unwrap();
    k.write_bytes(pid2, buf2, material.p_bytes()).unwrap();
    let t1 = scanner.scan_kernel(&k);
    let d01 = t0.diff(&t1);
    assert_eq!(d01.appeared.len(), 1);
    assert!(d01.disappeared.is_empty());
    assert!(d01.reclassified.is_empty());

    // The first process exits: its copy migrates allocated→unallocated in
    // place — observation (4).
    k.exit(pid).unwrap();
    let t2 = scanner.scan_kernel(&k);
    let d12 = t1.diff(&t2);
    assert_eq!(d12.freed_in_place(), 1);
    assert!(d12.appeared.is_empty());
    assert!(d12.disappeared.is_empty());
    assert!(!d12.is_empty());

    // Identity diff is empty.
    assert!(t2.diff(&t2).is_empty());
}
