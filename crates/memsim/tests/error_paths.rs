//! Table-driven coverage of the kernel's documented error paths: every
//! fallible `Kernel` API must return its documented [`SimError`] variant —
//! never panic — and every variant's `Display` string (used verbatim in
//! harness reports) must stay informative.

use memsim::{
    FaultPlan, FileId, Kernel, MachineConfig, Pid, SimError, VAddr, PAGE_SIZE,
};

fn small() -> Kernel {
    Kernel::new(MachineConfig::small())
}

/// A pid the kernel has never handed out.
const GHOST: Pid = Pid(0xDEAD);
/// A file id the VFS has never handed out.
const NOFILE: FileId = FileId(0xBEEF);
/// An address no test process maps.
const WILD: VAddr = VAddr(0x7777_0000);

#[test]
fn every_api_returns_documented_variant_for_dead_process() {
    let mut k = small();
    // Each entry drives one API against a process that does not exist and
    // names the variant its docs promise.
    let cases: Vec<(&str, SimError)> = vec![
        ("fork", k.fork(GHOST).unwrap_err()),
        ("exit", k.exit(GHOST).unwrap_err()),
        ("heap_alloc", k.heap_alloc(GHOST, 64).unwrap_err()),
        ("heap_free", k.heap_free(GHOST, WILD).unwrap_err()),
        ("alloc_special_region", k.alloc_special_region(GHOST, 1).unwrap_err()),
        ("free_special_region", k.free_special_region(GHOST, WILD, 1).unwrap_err()),
        ("mlock", k.mlock(GHOST, WILD, 16).unwrap_err()),
        ("mprotect_readonly", k.mprotect_readonly(GHOST, WILD, 16, true).unwrap_err()),
        ("write_bytes", k.write_bytes(GHOST, WILD, b"x").unwrap_err()),
        ("read_bytes", k.read_bytes(GHOST, WILD, 1).unwrap_err()),
        ("dump_process", k.dump_process(GHOST).unwrap_err()),
        ("heap_usage", k.heap_usage(GHOST).unwrap_err()),
        ("heap_base", k.heap_base(GHOST).unwrap_err()),
        ("parent_of", k.parent_of(GHOST).unwrap_err()),
    ];
    for (api, err) in cases {
        match err {
            // heap_free checks the chunk map through the process, so a dead
            // process surfaces as either NoSuchProcess or BadFree depending
            // on the secure_dealloc path; everything else must say
            // NoSuchProcess.
            SimError::NoSuchProcess(p) => assert_eq!(p, GHOST, "{api}"),
            SimError::BadFree(_) if api == "heap_free" => {}
            other => panic!("{api}: expected NoSuchProcess, got {other:?}"),
        }
    }
}

#[test]
fn address_errors_name_the_failing_page() {
    let mut k = small();
    let pid = k.spawn();
    let cases: Vec<(&str, SimError)> = vec![
        ("write_bytes", k.write_bytes(pid, WILD, b"x").unwrap_err()),
        ("read_bytes", k.read_bytes(pid, WILD, 1).unwrap_err()),
        ("mlock", k.mlock(pid, WILD, 16).unwrap_err()),
        ("mprotect", k.mprotect_readonly(pid, WILD, 16, true).unwrap_err()),
        ("free_special_region", k.free_special_region(pid, WILD, 1).unwrap_err()),
    ];
    for (api, err) in cases {
        match err {
            SimError::BadAddress(a) => {
                assert_eq!(a.vpn(), WILD.vpn(), "{api}: error names wrong page");
            }
            other => panic!("{api}: expected BadAddress, got {other:?}"),
        }
    }
}

#[test]
fn bad_free_paths() {
    let mut k = small();
    let pid = k.spawn();
    let a = k.heap_alloc(pid, 64).unwrap();
    // Not a chunk start.
    assert_eq!(
        k.heap_free(pid, a.add(8)),
        Err(SimError::BadFree(a.add(8)))
    );
    // Double free.
    k.heap_free(pid, a).unwrap();
    assert_eq!(k.heap_free(pid, a), Err(SimError::BadFree(a)));
    // heap_free_zeroed on a dead pointer reports the same variant.
    assert_eq!(k.heap_free_zeroed(pid, a), Err(SimError::BadFree(a)));
    // kfree double free.
    let obj = k.kmalloc(32).unwrap();
    k.kfree(obj).unwrap();
    assert!(matches!(k.kfree(obj), Err(SimError::BadFree(_))));
}

#[test]
fn read_only_pages_fault_on_write() {
    let mut k = small();
    let pid = k.spawn();
    let region = k.alloc_special_region(pid, 1).unwrap();
    k.write_bytes(pid, region, b"before").unwrap();
    k.mprotect_readonly(pid, region, PAGE_SIZE, true).unwrap();
    match k.write_bytes(pid, region, b"after") {
        Err(SimError::ReadOnly(a)) => assert_eq!(a.vpn(), region.vpn()),
        other => panic!("expected ReadOnly, got {other:?}"),
    }
    // Lifting the protection restores writability.
    k.mprotect_readonly(pid, region, PAGE_SIZE, false).unwrap();
    k.write_bytes(pid, region, b"after").unwrap();
}

#[test]
fn file_errors() {
    let mut k = small();
    let pid = k.spawn();
    assert_eq!(k.file_len(NOFILE), Err(SimError::NoSuchFile(NOFILE)));
    assert_eq!(k.file_name(NOFILE).unwrap_err(), SimError::NoSuchFile(NOFILE));
    assert_eq!(
        k.read_file(pid, NOFILE, false).unwrap_err(),
        SimError::NoSuchFile(NOFILE)
    );
}

#[test]
fn out_of_memory_paths() {
    // The smallest useful machine: 4 frames.
    let mut k = Kernel::new(MachineConfig::small().with_mem_bytes(4 * PAGE_SIZE));
    let pid = k.spawn();
    // Exhaust physical memory.
    let big = k.heap_alloc(pid, 2 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, big, &[1u8; 2 * PAGE_SIZE]).unwrap();
    assert_eq!(
        k.heap_alloc(pid, 16 * PAGE_SIZE),
        Err(SimError::OutOfMemory)
    );
    assert_eq!(k.alloc_kernel_pages(16).unwrap_err(), SimError::OutOfMemory);
    assert_eq!(
        k.alloc_special_region(pid, 16).unwrap_err(),
        SimError::OutOfMemory
    );
    // kmalloc over the largest slab class is OutOfMemory by contract.
    assert_eq!(k.kmalloc(1 << 20).unwrap_err(), SimError::OutOfMemory);
}

#[test]
fn mlock_denied_paths() {
    // Via the RLIMIT knob...
    let mut k = Kernel::new(MachineConfig::small().with_memlock_limit(Some(PAGE_SIZE)));
    let pid = k.spawn();
    let region = k.alloc_special_region(pid, 2).unwrap();
    assert_eq!(
        k.mlock(pid, region, 2 * PAGE_SIZE),
        Err(SimError::MlockDenied)
    );
    // ...and via fault injection.
    let mut k2 = small();
    let pid2 = k2.spawn();
    let r2 = k2.alloc_special_region(pid2, 1).unwrap();
    k2.install_fault_plan(FaultPlan::new().fail_nth(memsim::FaultOp::Mlock, 1));
    assert_eq!(k2.mlock(pid2, r2, PAGE_SIZE), Err(SimError::MlockDenied));
}

#[test]
fn display_strings_are_stable_and_informative() {
    // Harness reports print these verbatim; pin the load-bearing substring
    // of each so report wording cannot silently degrade.
    let cases: [(SimError, &str); 8] = [
        (SimError::OutOfMemory, "out of simulated physical memory"),
        (SimError::NoSuchProcess(Pid(3)), "no such process"),
        (SimError::NoSuchFile(FileId(1)), "no such file"),
        (SimError::BadAddress(VAddr(0x10)), "unmapped or invalid address"),
        (SimError::BadFree(VAddr(0x20)), "free of non-allocated chunk"),
        (SimError::ReadOnly(VAddr(0x30)), "write to read-only page"),
        (SimError::MlockDenied, "mlock refused"),
        (
            SimError::SwappedOut(VAddr(0x40)),
            "is swapped out; fault it in first",
        ),
    ];
    for (err, needle) in cases {
        let shown = err.to_string();
        assert!(
            shown.contains(needle),
            "{err:?} displays {shown:?}, expected to contain {needle:?}"
        );
    }
    // Variants carrying an address must echo it.
    assert!(SimError::BadAddress(VAddr(0x1234)).to_string().contains("0x00001234"));
    assert!(SimError::NoSuchProcess(Pid(7)).to_string().contains('7'));
    assert!(SimError::SwappedOut(VAddr(0x4000)).to_string().contains("0x00004000"));
}

#[test]
fn swapped_out_reads_name_the_page_and_touch_clears_them() {
    let mut k = small();
    let pid = k.spawn();
    let a = k.heap_alloc(pid, PAGE_SIZE).unwrap();
    k.write_bytes(pid, a, b"survives the round trip").unwrap();
    assert!(k.swap_out_pressure(usize::MAX).unwrap() > 0);
    // A `&self` read cannot service the major fault, so it must surface
    // SwappedOut naming the evicted page — not BadAddress, not a panic.
    match k.read_bytes(pid, a, 8) {
        Err(SimError::SwappedOut(addr)) => assert_eq!(addr.vpn(), a.vpn()),
        other => panic!("expected SwappedOut, got {other:?}"),
    }
    // touch_pages is the documented remedy and must restore the bytes.
    k.touch_pages(pid, a, PAGE_SIZE).unwrap();
    assert_eq!(
        k.read_bytes(pid, a, 23).unwrap(),
        b"survives the round trip"
    );
}

#[test]
fn swap_fault_paths_leave_evicted_pages_retryable() {
    use memsim::FaultOp;
    let mut k = small();
    let pid = k.spawn();
    let a = k.heap_alloc(pid, 2 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, a, &[7u8; 2 * PAGE_SIZE]).unwrap();

    // An injected I/O error on the *second* eviction: partial progress —
    // the first page stays evicted, the second stays resident.
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::SwapOut, 2));
    assert_eq!(k.swap_out_pressure(usize::MAX), Err(SimError::OutOfMemory));
    k.clear_fault_plan();
    assert!(matches!(
        k.read_bytes(pid, a, 1),
        Err(SimError::SwappedOut(_))
    ));

    // An injected failure on the swap-*in* path: the page stays swapped,
    // and the very same fault retries cleanly once the plan is lifted.
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::SwapIn, 1));
    assert_eq!(
        k.touch_pages(pid, a, PAGE_SIZE),
        Err(SimError::OutOfMemory)
    );
    k.clear_fault_plan();
    k.touch_pages(pid, a, PAGE_SIZE).unwrap();
    assert_eq!(k.read_bytes(pid, a, 4).unwrap(), [7u8; 4]);
}

#[test]
fn swap_out_kill_reports_the_dead_owner() {
    let mut k = small();
    let pid = k.spawn();
    let a = k.heap_alloc(pid, PAGE_SIZE).unwrap();
    k.write_bytes(pid, a, &[9u8; PAGE_SIZE]).unwrap();
    // The first eviction is charged to the mapping owner; a Kill decision
    // there must take the process down and say so.
    k.install_fault_plan(FaultPlan::new().kill_at_index(k.op_index()));
    assert_eq!(
        k.swap_out_pressure(usize::MAX),
        Err(SimError::NoSuchProcess(pid))
    );
    assert!(!k.alive(pid));
    assert_eq!(k.stats().fault_kills, 1);
}

#[test]
fn writeback_fault_keeps_flushed_pages_flushed() {
    use memsim::FaultOp;
    let mut k = small();
    let pid = k.spawn();
    let fid = k.create_file("journal", &[]);
    k.write_file(fid, 0, &[3u8; 3 * PAGE_SIZE]).unwrap();
    assert_eq!(k.dirty_cache_pages(), 3);

    // Fail the second flush: exactly one page must have reached the file,
    // and the other two must still be dirty (no lost or double flushes).
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::Writeback, 2));
    assert_eq!(k.writeback(usize::MAX), Err(SimError::OutOfMemory));
    assert_eq!(k.dirty_cache_pages(), 2);

    // Lifting the plan drains the remainder and the data is intact.
    k.clear_fault_plan();
    assert_eq!(k.writeback(usize::MAX).unwrap(), 2);
    assert_eq!(k.dirty_cache_pages(), 0);
    let (buf, len) = k.read_file(pid, fid, true).unwrap();
    assert_eq!(len, 3 * PAGE_SIZE);
    let content = k.read_bytes(pid, buf, len).unwrap();
    assert!(content.iter().all(|&b| b == 3));
}
