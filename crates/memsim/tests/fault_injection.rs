//! Integration tests for the deterministic fault-injection subsystem:
//! targeted faults land exactly where planned, the kernel's internal state
//! stays consistent (transactional rollback), and the operation counter makes
//! plans replayable.

use memsim::{
    FaultOp, FaultPlan, FrameId, Kernel, MachineConfig, SimError, PAGE_SIZE,
};

fn small() -> Kernel {
    Kernel::new(MachineConfig::small())
}

#[test]
fn op_counter_advances_identically_with_and_without_plan() {
    let drive = |k: &mut Kernel| {
        let pid = k.spawn();
        let a = k.heap_alloc(pid, 3 * PAGE_SIZE).unwrap();
        let child = k.fork(pid).unwrap();
        let _ = k.kmalloc(64).unwrap();
        k.heap_free(pid, a).unwrap();
        k.exit(child).unwrap();
        k.exit(pid).unwrap();
    };
    let mut plain = small();
    drive(&mut plain);

    // A plan that never fires (indices far beyond the run) must observe the
    // same counter trajectory.
    let mut planned = small();
    planned.install_fault_plan(FaultPlan::new().fail_at_index(1_000_000));
    drive(&mut planned);

    assert_eq!(plain.op_index(), planned.op_index());
    assert_eq!(planned.stats().faults_injected, 0);
}

#[test]
fn nth_fork_fails_and_machine_continues() {
    let mut k = small();
    let pid = k.spawn();
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::Fork, 2));
    let c1 = k.fork(pid).expect("first fork fine");
    assert_eq!(k.fork(pid), Err(SimError::OutOfMemory));
    let c3 = k.fork(pid).expect("third fork fine");
    assert_eq!(k.stats().faults_injected, 1);
    for p in [c1, c3, pid] {
        k.exit(p).unwrap();
    }
}

#[test]
fn mlock_fault_returns_mlock_denied() {
    let mut k = small();
    let pid = k.spawn();
    let region = k.alloc_special_region(pid, 1).unwrap();
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::Mlock, 1));
    assert_eq!(k.mlock(pid, region, PAGE_SIZE), Err(SimError::MlockDenied));
    assert_eq!(k.stats().mlock_denials, 1);
    // The second attempt (not targeted) succeeds.
    k.mlock(pid, region, PAGE_SIZE).unwrap();
}

#[test]
fn memlock_limit_caps_locked_bytes_per_process() {
    let cfg = MachineConfig::small().with_memlock_limit(Some(2 * PAGE_SIZE));
    let mut k = Kernel::new(cfg);
    let pid = k.spawn();
    let region = k.alloc_special_region(pid, 3).unwrap();
    // Two pages fit under the limit...
    k.mlock(pid, region, 2 * PAGE_SIZE).unwrap();
    // ...the third does not.
    assert_eq!(
        k.mlock(pid, region.add(2 * PAGE_SIZE as u64), PAGE_SIZE),
        Err(SimError::MlockDenied)
    );
    // Re-locking already-locked pages is not double-counted.
    k.mlock(pid, region, 2 * PAGE_SIZE).unwrap();
    assert_eq!(k.stats().mlock_denials, 1);
}

#[test]
fn heap_alloc_mid_growth_failure_rolls_back_completely() {
    let mut k = small();
    let pid = k.spawn();
    let (live0, chunks0, pages0) = k.heap_usage(pid).unwrap();

    // Find the frame-allocation op that backs the *second* page of a grow,
    // by probing: the HeapAlloc hook fires first, then one FrameAlloc per
    // page. Failing the second FrameAlloc leaves one page mapped mid-call.
    let start = k.op_index();
    k.install_fault_plan(FaultPlan::new().fail_at_index(start + 2));
    assert_eq!(k.heap_alloc(pid, 3 * PAGE_SIZE), Err(SimError::OutOfMemory));
    k.clear_fault_plan();

    // Exact pre-call geometry: no chunk, no mapped page, no live byte.
    assert_eq!(k.heap_usage(pid).unwrap(), (live0, chunks0, pages0));
    // And the heap still works.
    let a = k.heap_alloc(pid, 3 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, a, &[0xAB; 3 * PAGE_SIZE]).unwrap();
    k.heap_free(pid, a).unwrap();
}

#[test]
fn special_region_mid_failure_rolls_back_and_next_region_reuses_space() {
    let mut k = small();
    let pid = k.spawn();
    let start = k.op_index();
    // SpecialAlloc hook is op start, pages are start+1, start+2, ... — fail
    // the second page.
    k.install_fault_plan(FaultPlan::new().fail_at_index(start + 2));
    assert_eq!(k.alloc_special_region(pid, 3), Err(SimError::OutOfMemory));
    k.clear_fault_plan();
    let (_, _, pages) = k.heap_usage(pid).unwrap();
    assert_eq!(pages, 0, "partially mapped special pages must be unmapped");

    // The region cursor was restored: a retry lands at the same base a
    // never-faulted machine would have used.
    let base = k.alloc_special_region(pid, 3).unwrap();
    let mut clean = small();
    let pid2 = clean.spawn();
    let clean_base = clean.alloc_special_region(pid2, 3).unwrap();
    assert_eq!(base, clean_base, "cursor rollback keeps layout deterministic");
}

#[test]
fn kernel_page_batch_failure_leaks_no_frames() {
    let mut k = small();
    let free0 = k.available_frames();
    let start = k.op_index();
    k.install_fault_plan(FaultPlan::new().fail_at_index(start + 2));
    assert!(k.alloc_kernel_pages(4).is_err());
    k.clear_fault_plan();
    assert_eq!(
        k.available_frames(),
        free0,
        "frames taken before the mid-batch failure must be returned"
    );
}

#[test]
fn kill_at_op_terminates_acting_process() {
    let mut k = small();
    let pid = k.spawn();
    let a = k.heap_alloc(pid, 64).unwrap();
    k.write_bytes(pid, a, b"doomed").unwrap();
    let start = k.op_index();
    // Next heap_alloc is the op at `start`; the plan kills the caller there.
    k.install_fault_plan(FaultPlan::new().kill_at_index(start));
    assert_eq!(k.heap_alloc(pid, 64), Err(SimError::NoSuchProcess(pid)));
    assert!(!k.alive(pid), "acting process must be gone");
    assert_eq!(k.stats().fault_kills, 1);
}

#[test]
fn seeded_plans_replay_bit_identically() {
    let run = |seed: u64| -> (u64, u64, Vec<u8>) {
        let mut k = small();
        k.install_fault_plan(FaultPlan::new().seeded(seed, 7));
        let pid = k.spawn();
        let mut survived = 0u64;
        for i in 0..40 {
            match k.heap_alloc(pid, 48 + i * 16) {
                Ok(addr) => {
                    survived += 1;
                    let _ = k.write_bytes(pid, addr, &[i as u8; 8]);
                }
                Err(SimError::OutOfMemory) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        (survived, k.op_index(), k.phys().to_vec())
    };
    let (a1, i1, m1) = run(99);
    let (a2, i2, m2) = run(99);
    assert_eq!((a1, i1), (a2, i2));
    assert_eq!(m1, m2, "identical plan + workload -> identical physical memory");
    let (b1, _, _) = run(100);
    // Not a hard requirement, but with 40 ops and 1-in-7 faults two seeds
    // almost surely diverge; equality here would suggest the seed is unused.
    assert!(a1 > 0 || b1 > 0);
}

#[test]
fn faulted_frame_alloc_does_not_corrupt_free_accounting() {
    let mut k = small();
    let pid = k.spawn();
    let free0 = k.available_frames();
    let start = k.op_index();
    // Fail every frame allocation for a while.
    let mut plan = FaultPlan::new();
    for i in 0..16 {
        plan = plan.fail_at_index(start + i);
    }
    k.install_fault_plan(plan);
    for _ in 0..8 {
        let _ = k.heap_alloc(pid, PAGE_SIZE);
    }
    k.clear_fault_plan();
    assert_eq!(k.available_frames(), free0);
    // Frame conservation still holds: every frame is either free or owned.
    let owned = (0..k.num_frames())
        .filter(|&i| k.is_allocated(FrameId(i)))
        .count();
    assert_eq!(owned + k.available_frames(), k.num_frames());
}
