//! Behavioural tests for the *real* swap and writeback channels: eviction
//! actually unmaps pages into slot-based swap, access faults them back,
//! swap crypto never reuses a keystream, slots are reused (bounded device),
//! mlock'd pages stay off swap under every single-fault plan, and
//! page-cache eviction is bit-deterministic run to run.

use memsim::{FaultOp, FaultPlan, Kernel, MachineConfig, Pid, SimError, VAddr, PAGE_SIZE};

const SECRET: &[u8] = b"-----SWAP-CHANNEL-SECRET-0123456789abcdef-----";

fn stock_kernel() -> Kernel {
    Kernel::new(MachineConfig::small())
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

// ---------------------------------------------------------------------
// Eviction / fault-back round trip
// ---------------------------------------------------------------------

#[test]
fn eviction_unmaps_and_access_faults_back() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, SECRET.len()).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();

    let frames_before = k.available_frames();
    let written = k.swap_out_pressure(usize::MAX).unwrap();
    assert!(written > 0);
    // Eviction frees the frames — this is real pressure relief, not a copy.
    assert!(k.available_frames() > frames_before);
    assert!(k.swapped_pages(pid).unwrap() > 0);

    // Reads see a major fault, not silent stale data.
    assert_eq!(
        k.read_bytes(pid, buf, SECRET.len()),
        Err(SimError::SwappedOut(VAddr(buf.0 & !(PAGE_SIZE as u64 - 1))))
    );

    // Fault the range back in: contents round-trip exactly.
    k.touch_pages(pid, buf, SECRET.len()).unwrap();
    assert_eq!(k.swapped_pages(pid).unwrap(), 0);
    assert_eq!(k.read_bytes(pid, buf, SECRET.len()).unwrap(), SECRET);

    let stats = k.stats();
    assert_eq!(stats.swap_writes as usize, written);
    assert!(stats.swap_ins > 0);
}

#[test]
fn write_to_swapped_page_faults_in_first() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 2 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    k.swap_out_pressure(usize::MAX).unwrap();

    // A one-byte write must not lose the rest of the page: the kernel
    // faults the page in from swap before applying the store.
    k.write_bytes(pid, buf.add(1), &[0xAB]).unwrap();
    let mut expect = SECRET.to_vec();
    expect[1] = 0xAB;
    assert_eq!(k.read_bytes(pid, buf, SECRET.len()).unwrap(), expect);
    assert!(k.stats().swap_ins > 0);
}

#[test]
fn fork_shares_swap_slots_and_exit_releases_them() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, SECRET.len()).unwrap();
    k.write_bytes(parent, buf, SECRET).unwrap();
    k.swap_out_pressure(usize::MAX).unwrap();

    // Fork while swapped: the child shares the parent's swap slots.
    let child = k.fork(parent).unwrap();
    assert_eq!(
        k.swapped_pages(child).unwrap(),
        k.swapped_pages(parent).unwrap()
    );

    // Both fault their copies back independently and read the same bytes.
    k.touch_pages(child, buf, SECRET.len()).unwrap();
    assert_eq!(k.read_bytes(child, buf, SECRET.len()).unwrap(), SECRET);
    k.touch_pages(parent, buf, SECRET.len()).unwrap();
    assert_eq!(k.read_bytes(parent, buf, SECRET.len()).unwrap(), SECRET);

    // Exit with pages still swapped must not leak slots: re-evict, kill
    // both, and the next eviction cycle reuses the same device range.
    k.swap_out_pressure(usize::MAX).unwrap();
    let high_water = k.swap_bytes().len();
    k.exit(child).unwrap();
    k.exit(parent).unwrap();
    let p2 = k.spawn();
    let b2 = k.heap_alloc(p2, SECRET.len()).unwrap();
    k.write_bytes(p2, b2, SECRET).unwrap();
    k.swap_out_pressure(usize::MAX).unwrap();
    assert_eq!(k.swap_bytes().len(), high_water, "slots must be reused");
}

// ---------------------------------------------------------------------
// Swap crypto: no two-time pad
// ---------------------------------------------------------------------

#[test]
fn swap_crypto_never_reuses_a_keystream() {
    let mut k = Kernel::new(MachineConfig::small().with_swap_crypto(true));
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, SECRET.len()).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();

    // Swap the same plaintext out twice (fault it back in between). A
    // keystream derived from the frame id alone would produce the same
    // ciphertext both times — a two-time pad, since XORing two swapped
    // images would cancel the keystream and reveal the plaintext diff.
    k.swap_out_pressure(usize::MAX).unwrap();
    let ct1 = k.swap_bytes().to_vec();
    k.touch_pages(pid, buf, SECRET.len()).unwrap();
    k.swap_out_pressure(usize::MAX).unwrap();
    let ct2 = k.swap_bytes().to_vec();

    assert!(!contains(&ct1, SECRET), "ciphertext leaks plaintext");
    assert!(!contains(&ct2, SECRET), "ciphertext leaks plaintext");
    assert_eq!(ct1.len(), ct2.len(), "same slot reused for same page");
    assert_ne!(ct1, ct2, "identical plaintext must encrypt differently");

    // The XOR of the two images is keystream1 ^ keystream2 (plaintext
    // cancels). With per-event seeds this must be non-degenerate: not all
    // zero, and it must not reveal the (cancelled-out) plaintext either.
    let xored: Vec<u8> = ct1.iter().zip(&ct2).map(|(a, b)| a ^ b).collect();
    assert!(xored.iter().any(|&b| b != 0), "two-time pad: XOR cancels");
    assert!(!contains(&xored, SECRET));
}

#[test]
fn swap_crypto_still_round_trips() {
    let mut k = Kernel::new(MachineConfig::small().with_swap_crypto(true));
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, SECRET.len()).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    for _ in 0..3 {
        k.swap_out_pressure(usize::MAX).unwrap();
        k.touch_pages(pid, buf, SECRET.len()).unwrap();
        assert_eq!(k.read_bytes(pid, buf, SECRET.len()).unwrap(), SECRET);
    }
}

// ---------------------------------------------------------------------
// Bounded device: slot reuse
// ---------------------------------------------------------------------

#[test]
fn swap_device_stays_bounded_under_repeated_pressure() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 4 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, buf, &vec![0x5A; 4 * PAGE_SIZE]).unwrap();

    let mut high_water = 0usize;
    for round in 0..16 {
        k.swap_out_pressure(usize::MAX).unwrap();
        if round == 0 {
            high_water = k.swap_bytes().len();
            assert!(high_water >= 4 * PAGE_SIZE);
        }
        // The device never grows past the first round's high-water mark:
        // freed slots are reused, not appended after.
        assert_eq!(k.swap_bytes().len(), high_water, "round {round}");
        k.touch_pages(pid, buf, 4 * PAGE_SIZE).unwrap();
    }
    // ...while the *event* counter keeps counting every page written.
    assert!(k.stats().swap_writes >= 16 * 4);
}

// ---------------------------------------------------------------------
// mlock vs swap, including under every single-fault plan
// ---------------------------------------------------------------------

/// The standard victim workload: a locked secret plus unlocked noise, two
/// rounds of pressure with fault-back in between. Returns whether `mlock`
/// itself succeeded (a plan may legitimately refuse it).
fn locked_victim_workload(k: &mut Kernel) -> bool {
    let victim = k.spawn();
    let Ok(region) = k.alloc_special_region(victim, 1) else {
        return false;
    };
    if k.write_bytes(victim, region, SECRET).is_err() {
        return false;
    }
    let locked = k.mlock(victim, region, PAGE_SIZE).is_ok();

    let noise = k.spawn();
    if let Ok(buf) = k.heap_alloc(noise, 2 * PAGE_SIZE) {
        let _ = k.write_bytes(noise, buf, &vec![0x77; 2 * PAGE_SIZE]);
        let _ = k.swap_out_pressure(usize::MAX);
        let _ = k.touch_pages(noise, buf, 2 * PAGE_SIZE);
    }
    let _ = k.fork(victim);
    let _ = k.swap_out_pressure(usize::MAX);
    locked
}

#[test]
fn mlock_keeps_secret_off_swap_under_every_single_fault_plan() {
    // Probe run: measure the operation-index space of the workload.
    let mut probe = stock_kernel();
    assert!(locked_victim_workload(&mut probe));
    assert!(
        !contains(probe.swap_bytes(), SECRET),
        "locked page swapped in the fault-free run"
    );
    let op_space = probe.op_index();
    assert!(op_space > 4, "workload too small to sweep");

    // Sweep: fail, then kill, at every single operation index. Whatever
    // the failure, a page that *was* locked must never reach the device.
    for idx in 0..op_space {
        for kill in [false, true] {
            let mut k = stock_kernel();
            let plan = if kill {
                FaultPlan::new().kill_at_index(idx)
            } else {
                FaultPlan::new().fail_at_index(idx)
            };
            k.install_fault_plan(plan);
            let locked = locked_victim_workload(&mut k);
            if locked {
                assert!(
                    !contains(k.swap_bytes(), SECRET),
                    "locked secret reached swap (idx {idx}, kill {kill})"
                );
            }
        }
    }
}

#[test]
fn swap_fault_ops_are_addressable_by_class() {
    // SwapOut: the first eviction fails, nothing reaches the device.
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, SECRET.len()).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::SwapOut, 1));
    assert_eq!(k.swap_out_pressure(usize::MAX), Err(SimError::OutOfMemory));
    assert_eq!(k.swapped_pages(pid).unwrap(), 0);
    assert_eq!(k.read_bytes(pid, buf, SECRET.len()).unwrap(), SECRET);

    // SwapIn: the fault-back fails; the page stays swapped and a retry
    // succeeds once the plan is gone.
    k.clear_fault_plan();
    k.swap_out_pressure(usize::MAX).unwrap();
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::SwapIn, 1));
    assert!(k.touch_pages(pid, buf, SECRET.len()).is_err());
    assert!(k.swapped_pages(pid).unwrap() > 0);
    k.clear_fault_plan();
    k.touch_pages(pid, buf, SECRET.len()).unwrap();
    assert_eq!(k.read_bytes(pid, buf, SECRET.len()).unwrap(), SECRET);
}

// ---------------------------------------------------------------------
// Write-back page cache and the disk image
// ---------------------------------------------------------------------

#[test]
fn write_file_is_cached_until_writeback_flushes() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let fid = k.create_file("journal.log", b"0123456789");

    k.write_file(fid, 4, SECRET).unwrap();
    assert!(k.dirty_cache_pages() > 0);
    // The backing file has grown (size is metadata) but holds no secret
    // bytes yet — they exist only in RAM.
    assert_eq!(k.file_len(fid).unwrap(), 4 + SECRET.len());
    assert!(!contains(&k.disk_bytes(), SECRET), "write-through, not back");

    // A reader sees the dirty cache, not the stale disk. (Plain cached
    // read — O_NOCACHE would evict and thereby flush the dirty pages.)
    let (addr, len) = k.read_file(pid, fid, false).unwrap();
    let view = k.read_bytes(pid, addr, len).unwrap();
    assert!(contains(&view, SECRET));

    // Writeback flushes; now — and only now — the disk image leaks it.
    let flushed = k.writeback(usize::MAX).unwrap();
    assert!(flushed > 0);
    assert_eq!(k.dirty_cache_pages(), 0);
    assert!(contains(&k.disk_bytes(), SECRET));
    assert_eq!(k.stats().writebacks as usize, flushed);
    let disk = k.disk_bytes();
    assert_eq!(&disk[..4], b"0123", "prefix preserved");
}

#[test]
fn writeback_fault_leaves_pages_dirty_with_partial_progress() {
    let mut k = stock_kernel();
    let fid = k.create_file("db.bin", &[]);
    // Two dirty pages.
    k.write_file(fid, 0, &vec![0x11; PAGE_SIZE]).unwrap();
    k.write_file(fid, PAGE_SIZE, &vec![0x22; PAGE_SIZE]).unwrap();
    assert_eq!(k.dirty_cache_pages(), 2);

    // The second flush op fails: exactly one page was retired.
    k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::Writeback, 2));
    assert!(k.writeback(usize::MAX).is_err());
    assert_eq!(k.dirty_cache_pages(), 1);

    k.clear_fault_plan();
    assert_eq!(k.writeback(usize::MAX).unwrap(), 1);
    assert_eq!(k.dirty_cache_pages(), 0);
    let disk = k.disk_bytes();
    assert!(disk[..PAGE_SIZE].iter().all(|&b| b == 0x11));
    assert!(disk[PAGE_SIZE..].iter().all(|&b| b == 0x22));
}

#[test]
fn reclaim_skips_dirty_pages_and_eviction_flushes_them() {
    let mut k = stock_kernel();
    let fid = k.create_file("cfg", &[]);
    k.write_file(fid, 0, SECRET).unwrap();

    // Memory-pressure reclaim must not drop data newer than the disk.
    assert_eq!(k.reclaim_page_cache(usize::MAX), 0);
    assert_eq!(k.file_cached_pages(fid), 1);

    // Explicit eviction flushes synchronously instead of losing the write.
    k.evict_file_cache(fid, false);
    assert_eq!(k.file_cached_pages(fid), 0);
    assert!(contains(&k.disk_bytes(), SECRET));
}

// ---------------------------------------------------------------------
// Determinism: eviction order, swap layout, full phys image
// ---------------------------------------------------------------------

/// A workload touching every nondeterminism-prone subsystem: page cache
/// (iteration order governs reclaim victims), swap slots, heap reuse.
fn churn(k: &mut Kernel) -> Pid {
    let pid = k.spawn();
    for i in 0..6 {
        let fid = k.create_file(&format!("f{i}"), &vec![i as u8; PAGE_SIZE * 2]);
        k.read_file(pid, fid, false).unwrap();
        if i % 2 == 0 {
            k.write_file(fid, PAGE_SIZE / 2, SECRET).unwrap();
        }
    }
    let buf = k.heap_alloc(pid, 3 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, buf, &vec![0xEE; 3 * PAGE_SIZE]).unwrap();
    k.reclaim_page_cache(4);
    k.swap_out_pressure(5).unwrap();
    k.writeback(3).unwrap();
    k.touch_pages(pid, buf, 3 * PAGE_SIZE).unwrap();
    k.reclaim_page_cache(usize::MAX);
    pid
}

#[test]
fn page_cache_eviction_is_bit_deterministic_run_to_run() {
    let mut k1 = stock_kernel();
    let mut k2 = stock_kernel();
    let p1 = churn(&mut k1);
    let p2 = churn(&mut k2);
    assert_eq!(p1, p2);
    // Bit-identity of every observable surface: RAM, swap, disk, stats.
    assert_eq!(k1.phys(), k2.phys(), "physical memory diverged");
    assert_eq!(k1.swap_bytes(), k2.swap_bytes(), "swap image diverged");
    assert_eq!(k1.disk_bytes(), k2.disk_bytes(), "disk image diverged");
    assert_eq!(k1.stats(), k2.stats());
    assert_eq!(k1.op_index(), k2.op_index());
    // And allocation order afterwards is identical too (free-list order).
    let a1 = k1.heap_alloc(p1, PAGE_SIZE).unwrap();
    let a2 = k2.heap_alloc(p2, PAGE_SIZE).unwrap();
    k1.write_bytes(p1, a1, &[1]).unwrap();
    k2.write_bytes(p2, a2, &[1]).unwrap();
    assert_eq!(k1.phys(), k2.phys());
}

// ---------------------------------------------------------------------
// Page dedup (KSM)
// ---------------------------------------------------------------------

#[test]
fn merge_identical_pages_shares_and_cow_breaks_on_write() {
    let mut k = stock_kernel();
    let a = k.spawn();
    let b = k.spawn();
    let page = vec![0xC3u8; PAGE_SIZE];
    let ra = k.alloc_special_region(a, 1).unwrap();
    let rb = k.alloc_special_region(b, 1).unwrap();
    k.write_bytes(a, ra, &page).unwrap();
    k.write_bytes(b, rb, &page).unwrap();

    let fa = k.translate(a, ra).unwrap();
    let fb = k.translate(b, rb).unwrap();
    assert_ne!(fa, fb);

    let merged = k.merge_identical_pages();
    assert!(merged >= 1);
    assert_eq!(k.stats().pages_merged, merged as u64);
    assert_eq!(
        k.translate(a, ra).unwrap(),
        k.translate(b, rb).unwrap(),
        "both map the canonical frame"
    );

    // Writing through the shared mapping COW-breaks; the other side is
    // untouched. The cow_breaks delta is the dedup side channel.
    let before = k.stats().cow_breaks;
    k.write_bytes(b, rb, &[0x00]).unwrap();
    assert_eq!(k.stats().cow_breaks, before + 1);
    assert_ne!(k.translate(a, ra).unwrap(), k.translate(b, rb).unwrap());
    assert_eq!(k.read_bytes(a, ra, 4).unwrap(), vec![0xC3; 4]);
}

#[test]
fn merge_reaches_locked_pages_but_keeps_them_locked() {
    let mut k = stock_kernel();
    let victim = k.spawn();
    let attacker = k.spawn();
    let mut page = vec![0u8; PAGE_SIZE];
    page[..SECRET.len()].copy_from_slice(SECRET);

    let rv = k.alloc_special_region(victim, 1).unwrap();
    k.write_bytes(victim, rv, &page).unwrap();
    k.mlock(victim, rv, PAGE_SIZE).unwrap();

    let ra = k.alloc_special_region(attacker, 1).unwrap();
    k.write_bytes(attacker, ra, &page).unwrap();

    // KSM is greedy: it merges even locked pages (the real bug class the
    // dedup attacker exploits).
    assert!(k.merge_identical_pages() >= 1);
    assert_eq!(k.translate(victim, rv), k.translate(attacker, ra));

    // The canonical frame inherits the lock: still off-swap.
    k.swap_out_pressure(usize::MAX).unwrap();
    assert!(!contains(k.swap_bytes(), SECRET));
    assert_eq!(k.read_bytes(victim, rv, SECRET.len()).unwrap(), SECRET);
}

#[test]
fn merge_is_conservative_about_near_misses() {
    let mut k = stock_kernel();
    let a = k.spawn();
    let b = k.spawn();
    let mut p1 = vec![0xA5u8; PAGE_SIZE];
    let p2 = p1.clone();
    p1[PAGE_SIZE - 1] ^= 1; // differ in the last byte only
    let ra = k.alloc_special_region(a, 1).unwrap();
    let rb = k.alloc_special_region(b, 1).unwrap();
    k.write_bytes(a, ra, &p1).unwrap();
    k.write_bytes(b, rb, &p2).unwrap();
    assert_eq!(k.merge_identical_pages(), 0, "near-identical must not merge");
    assert_ne!(k.translate(a, ra), k.translate(b, rb));
}
