//! Property-based tests: simulator invariants under randomized operation
//! sequences — frame conservation, no aliasing, COW correctness, and the
//! zeroing guarantee.
//!
//! Runs on `simrng::propcheck` (pure std) so the suite works with no
//! registry access.

use memsim::{FrameId, Kernel, KernelPolicy, MachineConfig, Pid, SimError, VAddr, PAGE_SIZE};
use simrng::propcheck::{self, Gen};

/// A randomized workload step.
#[derive(Debug, Clone)]
enum Op {
    Spawn,
    Fork(usize),
    Exit(usize),
    Alloc { proc_idx: usize, size: usize },
    Free { proc_idx: usize, alloc_idx: usize },
    Write { proc_idx: usize, alloc_idx: usize, byte: u8 },
    KernelPageCycle { n: usize },
    SwapOut { pages: usize },
}

fn gen_op(g: &mut Gen) -> Op {
    match g.usize_in(0..8) {
        0 => Op::Spawn,
        1 => Op::Fork(g.usize_in(0..8)),
        2 => Op::Exit(g.usize_in(0..8)),
        3 => Op::Alloc {
            proc_idx: g.usize_in(0..8),
            size: g.usize_in(1..3 * PAGE_SIZE),
        },
        4 => Op::Free {
            proc_idx: g.usize_in(0..8),
            alloc_idx: g.usize_in(0..8),
        },
        5 => Op::Write {
            proc_idx: g.usize_in(0..8),
            alloc_idx: g.usize_in(0..8),
            byte: g.u8(),
        },
        6 => Op::KernelPageCycle {
            n: g.usize_in(1..16),
        },
        _ => Op::SwapOut {
            pages: g.usize_in(1..64),
        },
    }
}

fn gen_ops(g: &mut Gen, max: usize) -> Vec<Op> {
    let n = g.usize_in(1..max);
    (0..n).map(|_| gen_op(g)).collect()
}

/// Host-side mirror of live state for cross-checking.
#[derive(Default)]
struct Mirror {
    procs: Vec<Pid>,
    /// Live allocations per process: (addr, size, fill byte if written).
    allocs: Vec<Vec<(VAddr, usize, Option<u8>)>>,
}

fn run_ops(policy: KernelPolicy, ops: &[Op]) -> (Kernel, Mirror) {
    let mut kernel = Kernel::new(
        MachineConfig::small()
            .with_mem_bytes(2 * 1024 * 1024)
            .with_policy(policy),
    );
    let mut m = Mirror::default();
    for op in ops {
        match *op {
            Op::Spawn => {
                if m.procs.len() < 8 {
                    m.procs.push(kernel.spawn());
                    m.allocs.push(Vec::new());
                }
            }
            Op::Fork(i) => {
                if !m.procs.is_empty() && m.procs.len() < 8 {
                    let parent = m.procs[i % m.procs.len()];
                    if let Ok(child) = kernel.fork(parent) {
                        m.procs.push(child);
                        // The child's live chunk set mirrors the parent's,
                        // but we track only parent-owned chunks to keep the
                        // mirror simple: the child gets an empty list.
                        m.allocs.push(Vec::new());
                    }
                }
            }
            Op::Exit(i) => {
                if m.procs.len() > 1 {
                    let idx = i % m.procs.len();
                    let pid = m.procs.remove(idx);
                    m.allocs.remove(idx);
                    kernel.exit(pid).unwrap();
                }
            }
            Op::Alloc { proc_idx, size } => {
                if !m.procs.is_empty() {
                    let idx = proc_idx % m.procs.len();
                    if let Ok(addr) = kernel.heap_alloc(m.procs[idx], size) {
                        m.allocs[idx].push((addr, size, None));
                    }
                }
            }
            Op::Free { proc_idx, alloc_idx } => {
                if !m.procs.is_empty() {
                    let idx = proc_idx % m.procs.len();
                    if !m.allocs[idx].is_empty() {
                        let pos = alloc_idx % m.allocs[idx].len();
                        let a = m.allocs[idx].remove(pos);
                        kernel.heap_free(m.procs[idx], a.0).unwrap();
                    }
                }
            }
            Op::Write { proc_idx, alloc_idx, byte } => {
                if !m.procs.is_empty() {
                    let idx = proc_idx % m.procs.len();
                    if !m.allocs[idx].is_empty() {
                        let ai = alloc_idx % m.allocs[idx].len();
                        let (addr, size, fill) = &mut m.allocs[idx][ai];
                        let data = vec![byte; *size];
                        kernel.write_bytes(m.procs[idx], *addr, &data).unwrap();
                        *fill = Some(byte);
                    }
                }
            }
            Op::KernelPageCycle { n } => {
                if let Ok(frames) = kernel.alloc_kernel_pages(n) {
                    kernel.free_kernel_pages(&frames);
                }
            }
            Op::SwapOut { pages } => {
                kernel.swap_out_pressure(pages).unwrap();
            }
        }
    }
    (kernel, m)
}

/// Frame conservation: every frame is either free or allocated, and the
/// counts always add up to the machine size.
#[test]
fn frame_conservation() {
    propcheck::cases(48, |g| {
        let ops = gen_ops(g, 120);
        let (kernel, _) = run_ops(KernelPolicy::stock(), &ops);
        let allocated = (0..kernel.num_frames())
            .filter(|&i| kernel.is_allocated(FrameId(i)))
            .count();
        assert_eq!(allocated + kernel.available_frames(), kernel.num_frames());
    });
}

/// Written data is read back intact — no aliasing between live chunks
/// across arbitrary fork/exit/free interleavings, and a round trip through
/// the swap device never corrupts a byte.
#[test]
fn no_aliasing_of_live_allocations() {
    propcheck::cases(48, |g| {
        let ops = gen_ops(g, 120);
        let (mut kernel, m) = run_ops(KernelPolicy::stock(), &ops);
        for (idx, pid) in m.procs.iter().enumerate() {
            for &(addr, size, fill) in &m.allocs[idx] {
                if let Some(byte) = fill {
                    // Chunks may have been evicted; fault them back in.
                    kernel.touch_pages(*pid, addr, size).unwrap();
                    let data = kernel.read_bytes(*pid, addr, size).unwrap();
                    assert!(
                        data.iter().all(|&b| b == byte),
                        "chunk at {addr} corrupted"
                    );
                }
            }
        }
    });
}

/// The zeroing guarantee: under the hardened policy, free memory is
/// all-zero after any operation sequence.
#[test]
fn hardened_policy_keeps_free_memory_zero() {
    propcheck::cases(48, |g| {
        let ops = gen_ops(g, 120);
        let (kernel, _) = run_ops(KernelPolicy::hardened(), &ops);
        for i in 0..kernel.num_frames() {
            let f = FrameId(i);
            if !kernel.is_allocated(f) {
                assert!(
                    kernel.frame_bytes(f).iter().all(|&b| b == 0),
                    "free {f} contains data under hardened policy"
                );
            }
        }
    });
}

/// Exited processes are gone and their frames reclaimed: allocating the
/// whole machine afterwards succeeds.
#[test]
fn exits_release_all_frames() {
    propcheck::cases(48, |g| {
        let ops = gen_ops(g, 80);
        let (mut kernel, m) = run_ops(KernelPolicy::stock(), &ops);
        for pid in &m.procs {
            kernel.exit(*pid).unwrap();
        }
        let n = kernel.available_frames();
        assert_eq!(n, kernel.num_frames(), "all frames reclaimable");
    });
}

/// Double frees are always rejected, never corrupting state.
#[test]
fn double_free_always_rejected() {
    propcheck::cases(48, |g| {
        let size = g.usize_in(1..4096);
        let mut kernel = Kernel::new(MachineConfig::small());
        let pid = kernel.spawn();
        let a = kernel.heap_alloc(pid, size).unwrap();
        kernel.heap_free(pid, a).unwrap();
        assert_eq!(kernel.heap_free(pid, a), Err(SimError::BadFree(a)));
        // And the heap still works.
        assert!(kernel.heap_alloc(pid, size).is_ok());
    });
}

/// Fork + read equality: a child always reads exactly what the parent
/// wrote, before and after either side triggers COW.
#[test]
fn fork_preserves_contents() {
    propcheck::cases(48, |g| {
        let data = g.bytes(1..2000);
        let mut kernel = Kernel::new(MachineConfig::small());
        let parent = kernel.spawn();
        let addr = kernel.heap_alloc(parent, data.len()).unwrap();
        kernel.write_bytes(parent, addr, &data).unwrap();
        let child = kernel.fork(parent).unwrap();
        assert_eq!(&kernel.read_bytes(child, addr, data.len()).unwrap(), &data);
        // Child mutates its view; parent must be unaffected.
        let mutated = vec![0xFFu8; data.len()];
        kernel.write_bytes(child, addr, &mutated).unwrap();
        assert_eq!(&kernel.read_bytes(parent, addr, data.len()).unwrap(), &data);
        assert_eq!(&kernel.read_bytes(child, addr, data.len()).unwrap(), &mutated);
    });
}
