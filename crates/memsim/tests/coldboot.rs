//! Property suite for `Kernel::snapshot_decayed` — the cold-boot capture.
//!
//! The decay model's contract, pinned here:
//!
//! * deterministic: same `(machine state, seed, rate)` → bit-identical image;
//! * one-sided: bits only ever decay 1→0, never 0→1;
//! * `decay_rate = 0` is exactly `Kernel::phys()`;
//! * the realized flip rate over the machine's 1-bits matches the configured
//!   rate within binomial concentration bounds;
//! * capturing is a pure read — machine state is untouched.

use memsim::{Kernel, MachineConfig, PAGE_SIZE};
use simrng::{propcheck, Rng64};

/// A small machine with memory worth decaying: aged free lists plus a live
/// process heap full of dense random bytes.
fn busy_machine(seed: u64) -> Kernel {
    let mut kernel = Kernel::new(MachineConfig::small());
    let mut rng = Rng64::new(seed);
    kernel.age_memory(&mut rng, 1.0);
    let pid = kernel.spawn();
    let len = 256 * PAGE_SIZE;
    let buf = kernel.heap_alloc(pid, len).unwrap();
    let payload = rng.gen_bytes(len);
    kernel.write_bytes(pid, buf, &payload).unwrap();
    kernel
}

fn count_ones(bytes: &[u8]) -> u64 {
    bytes.iter().map(|b| u64::from(b.count_ones())).sum()
}

#[test]
fn snapshots_are_deterministic_per_seed() {
    let kernel = busy_machine(1);
    propcheck::cases(16, |g| {
        let seed = g.u64();
        let rate = f64::from(g.u64_below(300) as u32) / 1000.0;
        assert_eq!(
            kernel.snapshot_decayed(seed, rate),
            kernel.snapshot_decayed(seed, rate),
            "same seed+rate must reproduce the image exactly"
        );
    });
    // Different seeds decay different bits (at any non-trivial rate).
    assert_ne!(
        kernel.snapshot_decayed(1, 0.1),
        kernel.snapshot_decayed(2, 0.1)
    );
}

#[test]
fn zero_rate_is_bit_identical_to_phys() {
    let kernel = busy_machine(2);
    propcheck::cases(8, |g| {
        let seed = g.u64();
        assert_eq!(kernel.snapshot_decayed(seed, 0.0), kernel.phys());
        assert_eq!(kernel.snapshot_decayed(seed, -1.0), kernel.phys());
    });
}

#[test]
fn decay_never_flips_zero_to_one() {
    let kernel = busy_machine(3);
    propcheck::cases(12, |g| {
        let seed = g.u64();
        let rate = f64::from(g.u64_below(500) as u32) / 1000.0;
        let image = kernel.snapshot_decayed(seed, rate);
        for (decayed, original) in image.iter().zip(kernel.phys()) {
            // Every surviving 1-bit existed in the original: decayed ⊆ original.
            assert_eq!(
                decayed & !original,
                0,
                "bit appeared from nowhere (seed {seed}, rate {rate})"
            );
        }
    });
}

#[test]
fn realized_flip_rate_matches_configured_rate() {
    let kernel = busy_machine(4);
    let total_ones = count_ones(kernel.phys());
    assert!(
        total_ones > 3_000_000,
        "machine must have enough 1-bits for tight bounds, got {total_ones}"
    );
    for rate in [0.01, 0.05, 0.15, 0.30] {
        // Realized flips over all frames are a Binomial(total_ones, rate)
        // draw; hold every seed within six standard deviations (a seeded
        // deterministic test, so failures mean the model is biased, not
        // unlucky).
        let sigma = (total_ones as f64 * rate * (1.0 - rate)).sqrt();
        let expect = total_ones as f64 * rate;
        propcheck::cases(6, |g| {
            let image = kernel.snapshot_decayed(g.u64(), rate);
            let flipped = (total_ones - count_ones(&image)) as f64;
            assert!(
                (flipped - expect).abs() <= 6.0 * sigma,
                "rate {rate}: flipped {flipped}, expected {expect} ± {:.0}",
                6.0 * sigma
            );
        });
    }
}

/// Chi-square uniformity across frames: decay must not concentrate in some
/// frames and spare others beyond what independence predicts.
#[test]
fn decay_is_uniform_across_frames() {
    let kernel = busy_machine(5);
    let rate = 0.1;
    let image = kernel.snapshot_decayed(0xC01D_B007, rate);
    let mut chi2 = 0.0;
    let mut dof = 0u32;
    for frame in 0..kernel.num_frames() {
        let span = frame * PAGE_SIZE..(frame + 1) * PAGE_SIZE;
        let ones = count_ones(&kernel.phys()[span.clone()]) as f64;
        if ones < 500.0 {
            continue; // too sparse for the normal approximation
        }
        let flipped = ones - count_ones(&image[span]) as f64;
        let expect = ones * rate;
        let var = ones * rate * (1.0 - rate);
        chi2 += (flipped - expect).powi(2) / var;
        dof += 1;
    }
    assert!(dof > 100, "need many dense frames, got {dof}");
    // Chi-square with k degrees of freedom has mean k and variance 2k;
    // accept within six standard deviations.
    let k = f64::from(dof);
    assert!(
        (chi2 - k).abs() <= 6.0 * (2.0 * k).sqrt(),
        "chi2 {chi2:.1} vs dof {k} — per-frame decay is not independent"
    );
}

#[test]
fn capture_does_not_mutate_machine_state() {
    let kernel = busy_machine(6);
    let before = kernel.phys().to_vec();
    let stats = kernel.stats();
    let _ = kernel.snapshot_decayed(99, 0.25);
    assert_eq!(kernel.phys(), &before[..]);
    assert_eq!(kernel.stats(), stats);
}

/// The property that makes shielding work: even at tiny decay rates, a
/// 16 KiB high-entropy region almost surely loses at least one bit, while
/// plenty of individual bytes survive for the scanner to chew on.
#[test]
fn large_buffers_lose_bits_even_at_low_rates() {
    let kernel = busy_machine(7);
    propcheck::cases(8, |g| {
        let image = kernel.snapshot_decayed(g.u64(), 0.01);
        assert_ne!(image, kernel.phys(), "1% decay must touch a busy machine");
    });
}
