//! Per-frame generation counters: the contract incremental scanners build
//! on. A frame whose `write_generation` did not move has bit-identical
//! bytes; a frame whose `state_generation` did not move has an identical
//! `FrameView`. Verified here both for scripted single operations and
//! property-style across random operation sequences.

use memsim::{FaultPlan, FrameId, Kernel, KernelPolicy, MachineConfig, VAddr};
use simrng::Rng64;

fn snapshot(k: &Kernel) -> Vec<(u64, u64, Vec<u8>, memsim::FrameView)> {
    (0..k.num_frames())
        .map(|i| {
            let f = FrameId(i);
            (
                k.write_generation(f),
                k.state_generation(f),
                k.frame_bytes(f).to_vec(),
                k.frame_view(f),
            )
        })
        .collect()
}

/// The central property: comparing two snapshots, equal write generations
/// imply equal bytes and equal state generations imply equal metadata.
fn assert_generations_cover_changes(before: &[(u64, u64, Vec<u8>, memsim::FrameView)], k: &Kernel) {
    for (i, (wg, sg, bytes, view)) in before.iter().enumerate() {
        let f = FrameId(i);
        if k.write_generation(f) == *wg {
            assert_eq!(k.frame_bytes(f), &bytes[..], "frame {i}: bytes changed, generation didn't");
        }
        if k.state_generation(f) == *sg {
            assert_eq!(k.frame_view(f), *view, "frame {i}: metadata changed, generation didn't");
        }
    }
}

#[test]
fn fresh_machine_has_zero_generations_and_clock() {
    let k = Kernel::new(MachineConfig::small());
    assert_eq!(k.generation_clock(), 0);
    for i in 0..k.num_frames() {
        assert_eq!(k.write_generation(FrameId(i)), 0);
        assert_eq!(k.state_generation(FrameId(i)), 0);
    }
}

#[test]
fn write_bumps_only_touched_frames() {
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 3 * 4096).unwrap();
    let before = snapshot(&k);
    let clock = k.generation_clock();
    k.write_bytes(pid, buf, &[0xCC; 5000]).unwrap();
    assert!(k.generation_clock() > clock, "clock must advance on writes");
    assert_generations_cover_changes(&before, &k);
    // Exactly the two spanned frames moved.
    let moved: Vec<usize> = (0..k.num_frames())
        .filter(|&i| k.write_generation(FrameId(i)) != before[i].0)
        .collect();
    assert_eq!(moved.len(), 2, "a 5000-byte write spans two frames: {moved:?}");
}

#[test]
fn state_changes_without_byte_changes_move_only_state_gen() {
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 4096).unwrap();
    k.write_bytes(pid, buf, &[0xDD; 4096]).unwrap();
    let frame = k.translate(pid, buf).unwrap();
    let before = snapshot(&k);

    // Exit without zeroing (stock policy): bytes stay, state flips to Free.
    k.exit(pid).unwrap();
    assert_eq!(k.write_generation(frame), before[frame.0].0, "no bytes changed on exit");
    assert_ne!(k.state_generation(frame), before[frame.0].1, "state flipped to Free");
    assert_generations_cover_changes(&before, &k);
}

#[test]
fn fork_and_mlock_are_metadata_events() {
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 4096).unwrap();
    k.write_bytes(pid, buf, &[0xEE; 64]).unwrap();
    let frame = k.translate(pid, buf).unwrap();

    let wg = k.write_generation(frame);
    let sg = k.state_generation(frame);
    let child = k.fork(pid).unwrap();
    assert_eq!(k.write_generation(frame), wg, "fork copies nothing");
    assert_ne!(k.state_generation(frame), sg, "fork adds a mapping");

    let sg = k.state_generation(frame);
    k.mlock(pid, buf, 4096).unwrap();
    assert_eq!(k.write_generation(frame), wg);
    assert_ne!(k.state_generation(frame), sg, "mlock sets the lock bit");

    // COW break: the child's write materializes a *new* frame (byte event)
    // and drops a mapping from the old one (metadata event).
    let before = snapshot(&k);
    k.write_bytes(child, buf, &[0x11; 64]).unwrap();
    let new_frame = k.translate(child, buf).unwrap();
    assert_ne!(new_frame, frame);
    assert_ne!(k.write_generation(new_frame), before[new_frame.0].0);
    assert_ne!(k.state_generation(frame), before[frame.0].1);
    assert_generations_cover_changes(&before, &k);
}

#[test]
fn zero_on_free_is_a_byte_event() {
    let mut k = Kernel::new(MachineConfig {
        policy: KernelPolicy::hardened(),
        ..MachineConfig::small()
    });
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 4096).unwrap();
    k.write_bytes(pid, buf, &[0x77; 4096]).unwrap();
    let frame = k.translate(pid, buf).unwrap();
    let wg = k.write_generation(frame);
    k.exit(pid).unwrap();
    assert_ne!(k.write_generation(frame), wg, "zero_on_free rewrites the frame");
    assert!(k.frame_bytes(frame).iter().all(|&b| b == 0));
}

#[test]
fn generation_stamps_are_unique_and_monotone() {
    let mut k = Kernel::new(MachineConfig::small());
    let pid = k.spawn();
    let mut seen = std::collections::HashSet::new();
    let mut last_clock = 0;
    for i in 0..32 {
        let b = k.heap_alloc(pid, 1024).unwrap();
        k.write_bytes(pid, b, &[i as u8; 1024]).unwrap();
        let clock = k.generation_clock();
        assert!(clock > last_clock);
        last_clock = clock;
        for j in 0..k.num_frames() {
            let g = k.write_generation(FrameId(j));
            if g != 0 {
                seen.insert((j, g));
            }
        }
    }
    // Every (frame, generation) pair names one byte image; collisions would
    // have shrunk the set below the number of distinct images. (Indirectly:
    // all stamps observed for one frame are distinct by construction.)
    assert!(!seen.is_empty());
}

#[test]
fn random_operation_soup_never_mutates_behind_the_generations() {
    for seed in 0..4u64 {
        let mut rng = Rng64::new(0x6E5 + seed);
        let mut k = Kernel::new(MachineConfig::small());
        if seed == 3 {
            // One round with faults landing mid-sequence.
            k.install_fault_plan(FaultPlan::new().seeded(seed, 7));
        }
        let mut pids = vec![k.spawn()];
        let mut bufs: Vec<(memsim::Pid, VAddr)> = Vec::new();
        for _ in 0..80 {
            let before = snapshot(&k);
            match rng.gen_below(8) {
                0 => pids.push(k.spawn()),
                1 => {
                    let pid = pids[rng.gen_index(pids.len())];
                    if let Ok(b) = k.heap_alloc(pid, 1 + rng.gen_index(3 * 4096)) {
                        let _ = k.write_bytes(pid, b, &[rng.next_u64() as u8; 97]);
                        bufs.push((pid, b));
                    }
                }
                2 => {
                    if !bufs.is_empty() {
                        let (pid, b) = bufs.swap_remove(rng.gen_index(bufs.len()));
                        let _ = k.heap_free(pid, b);
                    }
                }
                3 => {
                    let pid = pids[rng.gen_index(pids.len())];
                    if let Ok(c) = k.fork(pid) {
                        pids.push(c);
                    }
                }
                4 => {
                    if pids.len() > 1 {
                        let pid = pids.swap_remove(1 + rng.gen_index(pids.len() - 1));
                        bufs.retain(|&(p, _)| p != pid);
                        let _ = k.exit(pid);
                    }
                }
                5 => {
                    let _ = k.tty_input(&[rng.next_u64() as u8; 33]);
                    if rng.gen_bool(0.3) {
                        k.slab_shrink();
                    }
                }
                6 => {
                    let pid = pids[rng.gen_index(pids.len())];
                    let fid = k.create_file("f", &[rng.next_u64() as u8; 5000]);
                    let _ = k.read_file(pid, fid, rng.gen_bool(0.5));
                }
                _ => {
                    if !bufs.is_empty() {
                        let (pid, b) = bufs[rng.gen_index(bufs.len())];
                        let _ = k.mlock(pid, b, 64);
                        let _ = k.write_bytes(pid, b, &[0xF0; 31]);
                    }
                }
            }
            assert_generations_cover_changes(&before, &k);
        }
    }
}
