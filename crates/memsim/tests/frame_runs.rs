//! Contract tests for [`Kernel::frame_runs`], the zero-copy coalesced view
//! the scanner's sharded path walks: the runs must exactly partition the
//! frame range, each run's byte slice must alias the frames it covers, and
//! patterns straddling a run boundary must still be visible in `phys()`.

use memsim::{FrameId, FrameState, Kernel, MachineConfig, PAGE_SIZE};

fn machine() -> Kernel {
    Kernel::new(MachineConfig::small())
}

/// The partition contract: runs are ascending, contiguous, non-empty, cover
/// every frame exactly once, and adjacent runs differ in state.
fn assert_partition(k: &Kernel) {
    let runs = k.frame_runs();
    assert!(!runs.is_empty());
    let mut next = 0usize;
    for (i, r) in runs.iter().enumerate() {
        assert_eq!(r.start.0, next, "run {i} not contiguous");
        assert!(r.frames > 0, "run {i} empty");
        assert_eq!(r.bytes.len(), r.frames * PAGE_SIZE, "run {i} byte span");
        if i > 0 {
            assert_ne!(runs[i - 1].state, r.state, "adjacent runs {i} share state");
        }
        next = r.end_frame();
    }
    assert_eq!(next, k.num_frames(), "runs must cover the whole machine");
}

/// Every run's bytes must be the same memory `frame_bytes` exposes frame by
/// frame, and states must agree with the per-frame view.
fn assert_aliases_frames(k: &Kernel) {
    for r in k.frame_runs() {
        for i in 0..r.frames {
            let f = FrameId(r.start.0 + i);
            assert!(r.contains(f));
            assert_eq!(
                &r.bytes[i * PAGE_SIZE..(i + 1) * PAGE_SIZE],
                k.frame_bytes(f),
                "frame {f} bytes"
            );
            assert_eq!(k.frame_view(f).state, r.state, "frame {f} state");
        }
    }
}

#[test]
fn fresh_machine_is_one_free_run() {
    let k = machine();
    assert_partition(&k);
    let runs = k.frame_runs();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].state, FrameState::Free);
    assert!(!runs[0].allocated());
    assert_eq!(runs[0].bytes.len(), k.phys().len());
}

#[test]
fn runs_partition_after_alloc_write_free_churn() {
    let mut k = machine();
    let pid = k.spawn();
    let mut bufs = Vec::new();
    for i in 0..6 {
        let b = k.heap_alloc(pid, (1 + i % 3) * PAGE_SIZE).unwrap();
        k.write_bytes(pid, b, &vec![i as u8 + 1; PAGE_SIZE]).unwrap();
        bufs.push(b);
    }
    // Free every other buffer so allocated and freed regions interleave.
    for b in bufs.iter().step_by(2) {
        k.heap_free(pid, *b).unwrap();
    }
    assert_partition(&k);
    assert_aliases_frames(&k);
    let runs = k.frame_runs();
    assert!(runs.len() > 1, "churn must split the machine into several runs");
    // Both allocated and non-allocated runs must appear.
    assert!(runs.iter().any(|r| r.allocated()));
    assert!(runs.iter().any(|r| !r.allocated()));
}

#[test]
fn pattern_straddling_a_run_boundary_is_contiguous_in_phys() {
    // Write a marker across the last bytes of one buffer page and the first
    // bytes of the next; whatever run boundary falls between the two frames,
    // `phys()` must show the marker contiguously — that is the straddle the
    // sharded scanner's overlap window exists to catch.
    let mut k = machine();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 2 * PAGE_SIZE).unwrap();
    let marker = b"RUNSTRADDLEMARK!";
    let mut payload = vec![0u8; 2 * PAGE_SIZE];
    let at = PAGE_SIZE - marker.len() / 2;
    payload[at..at + marker.len()].copy_from_slice(marker);
    k.write_bytes(pid, buf, &payload).unwrap();

    assert_partition(&k);
    assert_aliases_frames(&k);
    let pos = k
        .phys()
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("marker must be contiguous in physical memory");
    // It must genuinely cross a frame boundary.
    assert_ne!(pos / PAGE_SIZE, (pos + marker.len() - 1) / PAGE_SIZE);
}

#[test]
fn exit_reshapes_runs_but_partition_holds() {
    let mut k = machine();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 4 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, buf, &vec![0xEE; 4 * PAGE_SIZE]).unwrap();
    let with_proc = k.frame_runs().len();
    k.exit(pid).unwrap();
    assert_partition(&k);
    assert_aliases_frames(&k);
    // The frames changed state (allocated → unallocated-dirty or similar);
    // the view must reflect whatever the new states are, still partitioned.
    let _ = with_proc; // shape may or may not change; the contract is above
}
