//! Behavioural tests for the simulated kernel: data-lifetime semantics, COW,
//! zeroing policies, page cache, and swap — the properties the paper's
//! attacks and defenses depend on.

use memsim::{Kernel, KernelPolicy, MachineConfig, SimError, PAGE_SIZE};

const SECRET: &[u8] = b"-----VERY SECRET RSA PRIME FACTOR-----";

fn stock_kernel() -> Kernel {
    Kernel::new(MachineConfig::small())
}

fn hardened_kernel() -> Kernel {
    Kernel::new(MachineConfig::small().with_policy(KernelPolicy::hardened()))
}

/// Does the simulated physical memory contain `needle` anywhere?
fn phys_contains(k: &Kernel, needle: &[u8]) -> bool {
    k.phys().windows(needle.len()).any(|w| w == needle)
}

/// Does any *free* frame contain `needle`?
fn free_memory_contains(k: &Kernel, needle: &[u8]) -> bool {
    (0..k.num_frames()).any(|i| {
        let f = memsim::FrameId(i);
        !k.is_allocated(f) && k.frame_bytes(f).windows(needle.len()).any(|w| w == needle)
    })
}

#[test]
fn write_lands_in_physical_memory() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 64).unwrap();
    assert!(!phys_contains(&k, SECRET));
    k.write_bytes(pid, buf, SECRET).unwrap();
    assert!(phys_contains(&k, SECRET));
    assert_eq!(k.read_bytes(pid, buf, SECRET.len()).unwrap(), SECRET);
}

#[test]
fn heap_free_leaves_data_behind_stock() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 64).unwrap();
    let _guard = k.heap_alloc(pid, 64).unwrap(); // prevent page trim
    k.write_bytes(pid, buf, SECRET).unwrap();
    k.heap_free(pid, buf).unwrap();
    // free() does not clear: the secret is still in (allocated) memory.
    assert!(phys_contains(&k, SECRET));
}

#[test]
fn process_exit_leaks_to_free_memory_stock() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 64).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    k.exit(pid).unwrap();
    // The paper's central hazard: exited process pages keep their contents.
    assert!(free_memory_contains(&k, SECRET));
}

#[test]
fn process_exit_is_clean_with_zero_on_free() {
    let mut k = hardened_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 64).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    k.exit(pid).unwrap();
    assert!(!phys_contains(&k, SECRET));
}

#[test]
fn zero_on_unmap_alone_clears_anon_pages() {
    let policy = KernelPolicy {
        zero_on_free: false,
        zero_on_unmap: true,
    };
    let mut k = Kernel::new(MachineConfig::small().with_policy(policy));
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 64).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    k.exit(pid).unwrap();
    assert!(!phys_contains(&k, SECRET));
}

#[test]
fn zero_on_unmap_does_not_cover_kernel_pages() {
    let policy = KernelPolicy {
        zero_on_free: false,
        zero_on_unmap: true,
    };
    let mut k = Kernel::new(MachineConfig::small().with_policy(policy));
    let frames = k.alloc_kernel_pages(1).unwrap();
    k.write_kernel_page(frames[0], 0, SECRET);
    k.free_kernel_pages(&frames);
    // zap_pte_range never sees kernel pages: the secret survives.
    assert!(free_memory_contains(&k, SECRET));
}

#[test]
fn zero_on_free_covers_kernel_pages() {
    let mut k = hardened_kernel();
    let frames = k.alloc_kernel_pages(1).unwrap();
    k.write_kernel_page(frames[0], 0, SECRET);
    k.free_kernel_pages(&frames);
    assert!(!phys_contains(&k, SECRET));
}

#[test]
fn heap_trim_releases_secret_pages_while_process_lives() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let big = k.heap_alloc(pid, 3 * PAGE_SIZE).unwrap();
    let mut payload = vec![0xaau8; 3 * PAGE_SIZE];
    payload[100..100 + SECRET.len()].copy_from_slice(SECRET);
    k.write_bytes(pid, big, &payload).unwrap();
    k.heap_free(pid, big).unwrap();
    assert!(k.alive(pid));
    // With trim on, the pages went back to the kernel uncleaned.
    assert!(free_memory_contains(&k, SECRET));
}

#[test]
fn heap_trim_off_keeps_pages_mapped() {
    let mut cfg = MachineConfig::small();
    cfg.heap_trim = false;
    let mut k = Kernel::new(cfg);
    let pid = k.spawn();
    let big = k.heap_alloc(pid, 3 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, big, &vec![0xbbu8; 3 * PAGE_SIZE]).unwrap();
    let (_, _, pages_before) = k.heap_usage(pid).unwrap();
    k.heap_free(pid, big).unwrap();
    let (_, _, pages_after) = k.heap_usage(pid).unwrap();
    assert_eq!(pages_before, pages_after);
}

#[test]
fn heap_free_zeroed_wipes_contents() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 64).unwrap();
    let _guard = k.heap_alloc(pid, 64).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    k.heap_free_zeroed(pid, buf).unwrap();
    assert!(!phys_contains(&k, SECRET));
}

#[test]
fn double_free_is_rejected() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 16).unwrap();
    k.heap_free(pid, buf).unwrap();
    assert!(matches!(
        k.heap_free(pid, buf),
        Err(SimError::BadFree(_))
    ));
}

#[test]
fn malloc_recycles_dirty_chunks() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let a = k.heap_alloc(pid, 64).unwrap();
    let _guard = k.heap_alloc(pid, 64).unwrap();
    k.write_bytes(pid, a, SECRET).unwrap();
    k.heap_free(pid, a).unwrap();
    let b = k.heap_alloc(pid, 64).unwrap();
    assert_eq!(a, b, "first fit should recycle");
    // The recycled chunk still contains the previous owner's secret.
    let contents = k.read_bytes(pid, b, SECRET.len()).unwrap();
    assert_eq!(contents, SECRET);
}

// ---------------------------------------------------------------------
// fork / COW
// ---------------------------------------------------------------------

#[test]
fn fork_shares_one_physical_copy() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, 64).unwrap();
    k.write_bytes(parent, buf, SECRET).unwrap();
    let before = count_occurrences(&k, SECRET);
    let c1 = k.fork(parent).unwrap();
    let c2 = k.fork(parent).unwrap();
    assert_eq!(count_occurrences(&k, SECRET), before, "COW adds no copies");
    assert_eq!(k.read_bytes(c1, buf, SECRET.len()).unwrap(), SECRET);
    assert_eq!(k.read_bytes(c2, buf, SECRET.len()).unwrap(), SECRET);
}

fn count_occurrences(k: &Kernel, needle: &[u8]) -> usize {
    k.phys().windows(needle.len()).filter(|w| *w == needle).count()
}

#[test]
fn cow_write_duplicates_the_page() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, 64).unwrap();
    k.write_bytes(parent, buf, SECRET).unwrap();
    let child = k.fork(parent).unwrap();
    // Child writes next to the secret on the same page: COW duplicates the
    // whole page, secret included — key multiplication in action.
    let scratch = k.heap_alloc(child, 16).unwrap();
    k.write_bytes(child, scratch, b"x").unwrap();
    assert_eq!(count_occurrences(&k, SECRET), 2);
    assert_eq!(k.stats().cow_breaks, 1);
    // Parent's copy unchanged.
    assert_eq!(k.read_bytes(parent, buf, SECRET.len()).unwrap(), SECRET);
    assert_eq!(k.read_bytes(child, buf, SECRET.len()).unwrap(), SECRET);
}

#[test]
fn unwritten_cow_page_stays_shared_after_sibling_writes() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let key_page = k.alloc_special_region(parent, 1).unwrap();
    k.write_bytes(parent, key_page, SECRET).unwrap();
    let heap = k.heap_alloc(parent, 64).unwrap();
    let c1 = k.fork(parent).unwrap();
    let c2 = k.fork(parent).unwrap();
    // Children write to their heaps but never to the key page.
    k.write_bytes(c1, heap, b"child1 scratch").unwrap();
    k.write_bytes(c2, heap, b"child2 scratch").unwrap();
    // The key page remains one physical copy for all three processes.
    assert_eq!(count_occurrences(&k, SECRET), 1);
    let frame = k.translate(parent, key_page).unwrap();
    assert_eq!(k.translate(c1, key_page), Some(frame));
    assert_eq!(k.translate(c2, key_page), Some(frame));
    assert_eq!(k.frame_view(frame).owners.len(), 3);
}

#[test]
fn cow_break_on_last_owner_does_not_copy() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, 64).unwrap();
    k.write_bytes(parent, buf, SECRET).unwrap();
    let child = k.fork(parent).unwrap();
    k.exit(child).unwrap();
    // Parent is sole owner again; write must not duplicate.
    k.write_bytes(parent, buf, b"overwrite").unwrap();
    assert_eq!(k.stats().cow_breaks, 0);
}

#[test]
fn exit_of_child_keeps_shared_frames_for_parent() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, 64).unwrap();
    k.write_bytes(parent, buf, SECRET).unwrap();
    let child = k.fork(parent).unwrap();
    k.exit(child).unwrap();
    assert_eq!(k.read_bytes(parent, buf, SECRET.len()).unwrap(), SECRET);
    let frame = k.translate(parent, buf).unwrap();
    assert_eq!(k.frame_view(frame).refcount, 1);
}

#[test]
fn fork_exit_storm_preserves_frame_accounting() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let buf = k.heap_alloc(parent, 256).unwrap();
    k.write_bytes(parent, buf, SECRET).unwrap();
    let avail0 = k.available_frames();
    for _ in 0..50 {
        let child = k.fork(parent).unwrap();
        let scratch = k.heap_alloc(child, 128).unwrap();
        k.write_bytes(child, scratch, b"handshake temporary").unwrap();
        k.exit(child).unwrap();
    }
    // All child frames returned: availability is back to the baseline.
    assert_eq!(k.available_frames(), avail0);
    assert_eq!(k.processes(), vec![parent]);
}

// ---------------------------------------------------------------------
// page cache / O_NOCACHE
// ---------------------------------------------------------------------

#[test]
fn read_file_populates_page_cache() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let fid = k.create_file("/etc/key.pem", SECRET);
    let (buf, len) = k.read_file(pid, fid, false).unwrap();
    assert_eq!(len, SECRET.len());
    assert_eq!(k.read_bytes(pid, buf, len).unwrap(), SECRET);
    assert_eq!(k.file_cached_pages(fid), 1);
    // Secret now exists twice: page cache + user buffer.
    assert_eq!(count_occurrences(&k, SECRET), 2);
}

#[test]
fn repeated_reads_reuse_cache() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let fid = k.create_file("f", &vec![7u8; 3 * PAGE_SIZE]);
    k.read_file(pid, fid, false).unwrap();
    let inserts = k.stats().cache_inserts;
    k.read_file(pid, fid, false).unwrap();
    assert_eq!(k.stats().cache_inserts, inserts, "second read hits cache");
    assert_eq!(k.file_cached_pages(fid), 3);
}

#[test]
fn nocache_read_leaves_no_cache_copy() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let fid = k.create_file("/etc/key.pem", SECRET);
    let (buf, len) = k.read_file(pid, fid, true).unwrap();
    assert_eq!(k.file_cached_pages(fid), 0);
    // Only the user buffer copy remains, and it is intact.
    assert_eq!(count_occurrences(&k, SECRET), 1);
    assert_eq!(k.read_bytes(pid, buf, len).unwrap(), SECRET);
    // The evicted cache page was cleared even under the stock policy.
    assert!(!free_memory_contains(&k, SECRET));
}

#[test]
fn plain_eviction_leaves_bytes_hardened_eviction_does_not() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let fid = k.create_file("f", SECRET);
    k.read_file(pid, fid, false).unwrap();
    k.evict_file_cache(fid, false);
    assert_eq!(k.file_cached_pages(fid), 0);
    assert!(free_memory_contains(&k, SECRET), "reclaim leaves stale bytes");

    let mut k2 = stock_kernel();
    let pid2 = k2.spawn();
    let fid2 = k2.create_file("f", SECRET);
    k2.read_file(pid2, fid2, false).unwrap();
    k2.evict_file_cache(fid2, true);
    assert!(!free_memory_contains(&k2, SECRET));
}

#[test]
fn multi_page_file_round_trips() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let mut content = vec![0u8; 2 * PAGE_SIZE + 123];
    for (i, b) in content.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    let fid = k.create_file("big", &content);
    let (buf, len) = k.read_file(pid, fid, false).unwrap();
    assert_eq!(len, content.len());
    assert_eq!(k.read_bytes(pid, buf, len).unwrap(), content);
    assert_eq!(k.file_cached_pages(fid), 3);
}

// ---------------------------------------------------------------------
// mlock / swap
// ---------------------------------------------------------------------

#[test]
fn swap_captures_unlocked_secrets() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 64).unwrap();
    k.write_bytes(pid, buf, SECRET).unwrap();
    let written = k.swap_out_pressure(usize::MAX).unwrap();
    assert!(written > 0);
    assert!(k
        .swap_bytes()
        .windows(SECRET.len())
        .any(|w| w == SECRET));
}

#[test]
fn mlock_keeps_secrets_out_of_swap() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let region = k.alloc_special_region(pid, 1).unwrap();
    k.write_bytes(pid, region, SECRET).unwrap();
    k.mlock(pid, region, PAGE_SIZE).unwrap();
    k.swap_out_pressure(usize::MAX).unwrap();
    assert!(!k
        .swap_bytes()
        .windows(SECRET.len())
        .any(|w| w == SECRET));
}

#[test]
fn mlock_survives_cow_break_of_locked_page() {
    let mut k = stock_kernel();
    let parent = k.spawn();
    let region = k.alloc_special_region(parent, 1).unwrap();
    k.write_bytes(parent, region, SECRET).unwrap();
    k.mlock(parent, region, PAGE_SIZE).unwrap();
    let child = k.fork(parent).unwrap();
    // Child writes to the locked page (unusual but possible): its private
    // copy must remain locked.
    k.write_bytes(child, region, b"child copy").unwrap();
    let child_frame = k.translate(child, region).unwrap();
    assert!(k.frame_view(child_frame).locked);
}

#[test]
fn mlock_unmapped_address_fails() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    assert!(matches!(
        k.mlock(pid, memsim::VAddr(0xdead_0000), 16),
        Err(SimError::BadAddress(_))
    ));
}

// ---------------------------------------------------------------------
// special regions
// ---------------------------------------------------------------------

#[test]
fn special_region_is_page_aligned_and_zeroed() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let r = k.alloc_special_region(pid, 2).unwrap();
    assert_eq!(r.0 % PAGE_SIZE as u64, 0);
    assert_eq!(k.read_bytes(pid, r, 2 * PAGE_SIZE).unwrap(), vec![0; 2 * PAGE_SIZE]);
}

#[test]
fn distinct_special_regions_do_not_overlap() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let a = k.alloc_special_region(pid, 1).unwrap();
    let b = k.alloc_special_region(pid, 1).unwrap();
    assert!(b.0 >= a.0 + PAGE_SIZE as u64);
}

#[test]
fn free_special_region_applies_policy() {
    let mut k = hardened_kernel();
    let pid = k.spawn();
    let r = k.alloc_special_region(pid, 1).unwrap();
    k.write_bytes(pid, r, SECRET).unwrap();
    k.free_special_region(pid, r, 1).unwrap();
    assert!(!phys_contains(&k, SECRET));
    // Double free fails.
    assert!(k.free_special_region(pid, r, 1).is_err());
}

// ---------------------------------------------------------------------
// errors & exhaustion
// ---------------------------------------------------------------------

#[test]
fn oom_is_reported_not_panicked() {
    let mut cfg = MachineConfig::small();
    cfg.mem_bytes = 16 * PAGE_SIZE;
    let mut k = Kernel::new(cfg);
    let pid = k.spawn();
    let res = k.heap_alloc(pid, 64 * PAGE_SIZE);
    assert_eq!(res.unwrap_err(), SimError::OutOfMemory);
    // The kernel remains usable afterwards.
    assert!(k.heap_alloc(pid, PAGE_SIZE).is_ok());
}

#[test]
fn dead_process_operations_fail() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    k.exit(pid).unwrap();
    assert!(matches!(
        k.heap_alloc(pid, 16),
        Err(SimError::NoSuchProcess(_))
    ));
    assert!(matches!(k.exit(pid), Err(SimError::NoSuchProcess(_))));
    assert!(k.read_bytes(pid, memsim::VAddr(0), 1).is_err());
}

#[test]
fn unmapped_access_fails() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    assert!(matches!(
        k.write_bytes(pid, memsim::VAddr(0x4000_0000), b"x"),
        Err(SimError::BadAddress(_))
    ));
}

#[test]
fn missing_file_fails() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    assert!(matches!(
        k.read_file(pid, memsim::FileId(99), false),
        Err(SimError::NoSuchFile(_))
    ));
}

#[test]
fn cross_page_write_and_read() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 3 * PAGE_SIZE).unwrap();
    let mut data = vec![0u8; 2 * PAGE_SIZE];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (i % 13) as u8;
    }
    // Write straddling two page boundaries.
    let off = PAGE_SIZE as u64 - 100;
    k.write_bytes(pid, buf.add(off), &data).unwrap();
    assert_eq!(k.read_bytes(pid, buf.add(off), data.len()).unwrap(), data);
}

#[test]
fn stats_track_core_events() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let a = k.heap_alloc(pid, 32).unwrap();
    k.heap_free(pid, a).unwrap();
    let child = k.fork(pid).unwrap();
    k.exit(child).unwrap();
    let s = k.stats();
    assert_eq!(s.heap_allocs, 1);
    assert_eq!(s.heap_frees, 1);
    assert_eq!(s.forks, 1);
    assert_eq!(s.exits, 1);
    assert!(s.frames_allocated >= 1);
}

#[test]
fn page_cache_is_reclaimed_under_memory_pressure() {
    // Fill most of a tiny machine with cached file pages, then demand
    // anonymous memory: the allocator must reclaim the cache, not OOM.
    let mut cfg = MachineConfig::small();
    cfg.mem_bytes = 64 * PAGE_SIZE;
    let mut k = Kernel::new(cfg);
    let pid = k.spawn();
    let fid = k.create_file("big", &vec![0x42u8; 20 * PAGE_SIZE]);
    k.read_file(pid, fid, false).unwrap();
    assert_eq!(k.file_cached_pages(fid), 20);

    // 20 cache + 21 user-buffer pages leave ~23 free; a 28-page demand only
    // succeeds by evicting cache pages.
    let before = k.stats().cache_evictions;
    let buf = k.heap_alloc(pid, 28 * PAGE_SIZE).unwrap();
    k.write_bytes(pid, buf, &vec![1u8; 28 * PAGE_SIZE]).unwrap();
    assert!(k.stats().cache_evictions > before, "reclaim fired");
    assert!(k.file_cached_pages(fid) < 20);
}

#[test]
fn reclaimed_cache_pages_leak_contents_on_stock_kernel() {
    let mut k = stock_kernel();
    let pid = k.spawn();
    let fid = k.create_file("secretfile", SECRET);
    k.read_file(pid, fid, false).unwrap();
    let reclaimed = k.reclaim_page_cache(10);
    assert!(reclaimed >= 1);
    // Ordinary reclaim does not clear: the file contents sit in free memory.
    assert!(free_memory_contains(&k, SECRET));

    // The hardened kernel clears on free, covering reclaim too.
    let mut k2 = hardened_kernel();
    let pid2 = k2.spawn();
    let fid2 = k2.create_file("secretfile", SECRET);
    k2.read_file(pid2, fid2, false).unwrap();
    k2.reclaim_page_cache(10);
    assert!(!free_memory_contains(&k2, SECRET));
}
