//! A user-space simulation of the memory subsystem of a 2.6-era Linux kernel,
//! built to reproduce the experiments in Harrison & Xu, *Protecting
//! Cryptographic Keys from Memory Disclosure Attacks* (DSN 2007).
//!
//! The simulated machine provides exactly the mechanisms the paper's attacks
//! and countermeasures live on:
//!
//! * a flat physical memory of page frames with per-frame metadata
//!   (allocation state, reference count, mlock, reverse mappings);
//! * a page allocator with **hot/cold free lists** — freed pages are recycled
//!   most-recently-freed first, which is why the ext2 dirent leak observes
//!   freshly freed data;
//! * processes with copy-on-write `fork`, a `malloc`-style user heap whose
//!   freed chunks keep their contents, page-aligned "special regions"
//!   (`posix_memalign` + `mlock`), and page-granular unmapping;
//! * a page cache fed by a tiny VFS, including the paper's `O_NOCACHE` flag
//!   that evicts and clears a file's pages right after they are read;
//! * a slot-based swap device with real eviction: under pressure, unlocked
//!   anonymous pages move out of their frames (PTE → swapped, frame freed)
//!   and fault back in on the next access, optionally through Provos-style
//!   swap encryption;
//! * the paper's two kernel patches as switchable policies:
//!   [`KernelPolicy::zero_on_free`] (the `free_hot_cold_page` /
//!   `__free_pages_ok` patch) and [`KernelPolicy::zero_on_unmap`] (the
//!   `zap_pte_range` patch).
//!
//! Everything a process writes lands in one `Vec<u8>` of simulated physical
//! memory, so the `keyscan` crate can scan it exactly like the paper's
//! `scanmemory` kernel module scanned real RAM.
//!
//! # Examples
//!
//! ```
//! use memsim::{Kernel, MachineConfig};
//!
//! let mut k = Kernel::new(MachineConfig::small());
//! let pid = k.spawn();
//! let buf = k.heap_alloc(pid, 64)?;
//! k.write_bytes(pid, buf, b"secret key material")?;
//! let child = k.fork(pid)?;
//! // The child shares the page copy-on-write until somebody writes.
//! assert_eq!(k.read_bytes(child, buf, 6)?, b"secret");
//! # Ok::<(), memsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod fault;
mod heap;
mod kernel;
mod process;
mod slab;
mod vfs;

pub use fault::{FaultDecision, FaultOp, FaultPlan};
pub use kernel::{FrameRun, FrameView, Kernel, KernelStats};
pub use process::Pid;
pub use slab::{KObj, SLAB_CLASSES};
pub use vfs::FileId;

use core::fmt;

/// Size of one simulated page in bytes, matching i386 Linux.
pub const PAGE_SIZE: usize = 4096;

/// Index of a physical page frame.
///
/// Frame `i` covers simulated physical bytes `[i * PAGE_SIZE, (i+1) * PAGE_SIZE)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub usize);

impl FrameId {
    /// First physical byte offset covered by this frame.
    #[must_use]
    pub fn base(self) -> usize {
        self.0 * PAGE_SIZE
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// A virtual address inside one simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Virtual page number containing this address.
    #[must_use]
    pub fn vpn(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Byte offset within the page.
    #[must_use]
    pub fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Address advanced by `n` bytes.
    ///
    /// Named like `Add`, intentionally: pointer arithmetic on a newtype.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, n: u64) -> Self {
        Self(self.0 + n)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

/// What a physical frame is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// On a free list (or never yet allocated). Its bytes are whatever the
    /// previous owner left behind, unless a zeroing policy cleared them.
    Free,
    /// Mapped into one or more process address spaces as anonymous memory.
    Anon,
    /// Owned by the kernel (e.g. an ext2 directory block buffer).
    Kernel,
    /// Holding a cached page of a file.
    PageCache,
}

/// The paper's kernel patches, as independently switchable policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelPolicy {
    /// Clear pages in the page-free path (`free_hot_cold_page` /
    /// `__free_pages_ok` patch). Guarantees unallocated memory never holds
    /// stale data, whatever kind of page is being freed.
    pub zero_on_free: bool,
    /// Clear pages at unmap time when the unmapping process holds the last
    /// reference (`zap_pte_range` patch). Covers anonymous process pages but
    /// not kernel or page-cache pages.
    pub zero_on_unmap: bool,
}

impl KernelPolicy {
    /// Both patches off — the stock vulnerable kernel.
    #[must_use]
    pub fn stock() -> Self {
        Self::default()
    }

    /// Both patches on — the paper's kernel-level solution.
    #[must_use]
    pub fn hardened() -> Self {
        Self {
            zero_on_free: true,
            zero_on_unmap: true,
        }
    }
}

/// Configuration of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Physical memory size in bytes (rounded down to whole pages).
    pub mem_bytes: usize,
    /// Kernel zeroing policy.
    pub policy: KernelPolicy,
    /// Maximum length of the hot (most-recently-freed) list before frames
    /// spill to the cold list.
    pub hot_list_max: usize,
    /// When `true`, the user heap returns fully-free trailing pages to the
    /// kernel (glibc-style trim), which is how key-bearing pages reach the
    /// free lists *while a worker process keeps running*.
    pub heap_trim: bool,
    /// Chow et al.'s "secure deallocation" (USENIX Security 2005) as a
    /// library baseline: every `free()` clears the chunk's bytes. The paper
    /// argues its own solutions are strictly stronger — this switch lets the
    /// comparison experiments demonstrate why.
    pub secure_dealloc: bool,
    /// Provos-style swap encryption (USENIX Security 2000): pages written to
    /// the swap device are encrypted, so a stolen swap partition reveals
    /// nothing.
    pub swap_crypto: bool,
    /// `RLIMIT_MEMLOCK`-style cap on the bytes one process may `mlock`
    /// (`None` = unlimited, the pre-2.6.9 root default). Real deployments
    /// routinely run with a small limit — 32 KB was the longtime Linux
    /// default — which is exactly the condition under which the paper's
    /// `mlock`-based countermeasure degrades.
    pub memlock_limit: Option<usize>,
}

impl MachineConfig {
    /// The paper's testbed: 256 MB of RAM, stock policy.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            mem_bytes: 256 * 1024 * 1024,
            policy: KernelPolicy::stock(),
            hot_list_max: 64,
            heap_trim: true,
            secure_dealloc: false,
            swap_crypto: false,
            memlock_limit: None,
        }
    }

    /// A small 4 MB machine for fast unit tests.
    #[must_use]
    pub fn small() -> Self {
        Self {
            mem_bytes: 4 * 1024 * 1024,
            policy: KernelPolicy::stock(),
            hot_list_max: 16,
            heap_trim: true,
            secure_dealloc: false,
            swap_crypto: false,
            memlock_limit: None,
        }
    }

    /// Same machine with a different policy.
    #[must_use]
    pub fn with_policy(mut self, policy: KernelPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables Chow-style secure deallocation (clear on `free()`).
    #[must_use]
    pub fn with_secure_dealloc(mut self, on: bool) -> Self {
        self.secure_dealloc = on;
        self
    }

    /// Enables Provos-style swap encryption.
    #[must_use]
    pub fn with_swap_crypto(mut self, on: bool) -> Self {
        self.swap_crypto = on;
        self
    }

    /// Same machine with a different memory size.
    #[must_use]
    pub fn with_mem_bytes(mut self, mem_bytes: usize) -> Self {
        self.mem_bytes = mem_bytes;
        self
    }

    /// Caps the bytes one process may `mlock` (`None` = unlimited).
    #[must_use]
    pub fn with_memlock_limit(mut self, limit: Option<usize>) -> Self {
        self.memlock_limit = limit;
        self
    }

    /// Number of page frames this configuration yields.
    #[must_use]
    pub fn num_frames(&self) -> usize {
        self.mem_bytes / PAGE_SIZE
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Errors surfaced by the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// No free physical frames remain.
    OutOfMemory,
    /// The referenced process does not exist or has exited.
    NoSuchProcess(Pid),
    /// The referenced file does not exist.
    NoSuchFile(FileId),
    /// An address was not mapped, or a heap pointer did not reference a live
    /// allocation.
    BadAddress(VAddr),
    /// A heap free targeted an address that is not an allocated chunk start.
    BadFree(VAddr),
    /// A write hit a page protected with [`Kernel::mprotect_readonly`].
    ReadOnly(VAddr),
    /// An `mlock` call was refused — the process hit the
    /// [`MachineConfig::memlock_limit`] cap, or an installed [`FaultPlan`]
    /// forced the refusal (`EPERM`/`ENOMEM` from real `mlock`).
    MlockDenied,
    /// The page holding this address is valid but currently evicted to swap.
    /// Mutable accessors ([`Kernel::write_bytes`], [`Kernel::touch_pages`])
    /// fault such pages back in transparently; this error surfaces only from
    /// shared-reference reads, which cannot run the fault-in path.
    SwappedOut(VAddr),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfMemory => write!(f, "out of simulated physical memory"),
            Self::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            Self::NoSuchFile(id) => write!(f, "no such file: {id}"),
            Self::BadAddress(a) => write!(f, "unmapped or invalid address: {a}"),
            Self::BadFree(a) => write!(f, "free of non-allocated chunk at {a}"),
            Self::ReadOnly(a) => write!(f, "write to read-only page at {a}"),
            Self::MlockDenied => write!(f, "mlock refused: RLIMIT_MEMLOCK exceeded or fault injected"),
            Self::SwappedOut(a) => write!(f, "page at {a} is swapped out; fault it in first"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_id_base() {
        assert_eq!(FrameId(0).base(), 0);
        assert_eq!(FrameId(3).base(), 3 * PAGE_SIZE);
    }

    #[test]
    fn vaddr_decomposition() {
        let a = VAddr(0x1000_0123);
        assert_eq!(a.vpn(), 0x10000);
        assert_eq!(a.page_offset(), 0x123);
        assert_eq!(a.add(0x10).0, 0x1000_0133);
    }

    #[test]
    fn config_frame_count() {
        assert_eq!(MachineConfig::small().num_frames(), 1024);
        assert_eq!(MachineConfig::paper().num_frames(), 65536);
    }

    #[test]
    fn policy_constructors() {
        assert!(!KernelPolicy::stock().zero_on_free);
        assert!(KernelPolicy::hardened().zero_on_free);
        assert!(KernelPolicy::hardened().zero_on_unmap);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: [SimError; 8] = [
            SimError::OutOfMemory,
            SimError::NoSuchProcess(Pid(3)),
            SimError::NoSuchFile(FileId(1)),
            SimError::BadAddress(VAddr(0x10)),
            SimError::BadFree(VAddr(0x20)),
            SimError::ReadOnly(VAddr(0x30)),
            SimError::MlockDenied,
            SimError::SwappedOut(VAddr(0x40)),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
