//! The simulated kernel: owns physical memory, the page allocator, processes,
//! the page cache, and the swap device, and implements the paper's zeroing
//! policies and `O_NOCACHE` semantics.

use crate::alloc::FreeLists;
use crate::fault::{FaultDecision, FaultOp, FaultPlan};
use crate::process::{Process, VmaKind, SPECIAL_BASE};
use crate::slab::{class_for, SlabAllocator};
use crate::vfs::Vfs;
use crate::KObj;
use crate::{
    FileId, FrameId, FrameState, MachineConfig, Pid, SimError, SimResult, VAddr, PAGE_SIZE,
};
use simrng::Rng64;
use std::collections::{BTreeMap, BTreeSet};

/// Per-frame metadata (the simulated `struct page`).
#[derive(Debug, Clone)]
struct Frame {
    state: FrameState,
    refcount: u32,
    locked: bool,
    /// Reverse mappings: which `(pid, vpn)` pairs map this frame. This is the
    /// information the paper's `scanmemory` module recovers through
    /// `page_lock_anon_vma` + `for_each_process`.
    mappings: Vec<(Pid, u64)>,
    /// For page-cache frames: which file page this caches.
    cache_key: Option<(FileId, u64)>,
}

impl Frame {
    fn free() -> Self {
        Self {
            state: FrameState::Free,
            refcount: 0,
            locked: false,
            mappings: Vec::new(),
            cache_key: None,
        }
    }
}

/// Metadata of one in-use swap slot. A freed slot keeps its bytes — a real
/// swap partition is never cleared on free, which is exactly the disclosure
/// channel the paper's `mlock` discipline defends against.
#[derive(Debug, Clone)]
struct SwapSlot {
    /// Number of `(pid, vpn)` swapped-PTE references to this slot.
    refs: u32,
    /// Initial keystream state when the slot was written under
    /// [`MachineConfig::swap_crypto`] (`None` = written in the clear). Provos
    /// keeps the per-page keys in kernel memory for exactly this purpose:
    /// decrypting on swap-in, and forgetting them at shutdown.
    crypt_seed: Option<u64>,
}

/// Read-only view of one frame's metadata, for scanners and assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameView {
    /// Current allocation state.
    pub state: FrameState,
    /// Number of address spaces (or kernel users) holding the frame.
    pub refcount: u32,
    /// Whether the frame is mlocked.
    pub locked: bool,
    /// Processes mapping the frame (empty for kernel/page-cache frames).
    pub owners: Vec<Pid>,
    /// The cached file, when this is a page-cache frame.
    pub cache_file: Option<FileId>,
}

/// A maximal run of physically adjacent frames sharing one allocation
/// state, borrowing its bytes straight out of `phys` — the zero-copy view
/// scanners walk instead of dispatching (and attributing) frame by frame.
///
/// Runs returned by [`Kernel::frame_runs`] partition physical memory: they
/// are ascending, contiguous, non-empty, and adjacent runs always differ in
/// state. A pattern may *straddle* the boundary between two runs (byte
/// continuity does not break at a state change — `phys` is one allocation),
/// so windowed consumers must extend each run by their straddle width; the
/// whole-memory scanners simply walk `Kernel::phys` and use runs for
/// attribution only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRun<'a> {
    /// First frame of the run.
    pub start: FrameId,
    /// Number of frames in the run (>= 1).
    pub frames: usize,
    /// The allocation state every frame in the run shares.
    pub state: FrameState,
    /// The run's bytes, borrowed zero-copy from physical memory
    /// (`frames * PAGE_SIZE` long).
    pub bytes: &'a [u8],
}

impl FrameRun<'_> {
    /// Physical byte offset of the run's first byte.
    #[must_use]
    pub fn base(&self) -> usize {
        self.start.base()
    }

    /// One past the run's last frame index.
    #[must_use]
    pub fn end_frame(&self) -> usize {
        self.start.0 + self.frames
    }

    /// Whether frame `f` lies inside the run.
    #[must_use]
    pub fn contains(&self, f: FrameId) -> bool {
        self.start.0 <= f.0 && f.0 < self.end_frame()
    }

    /// Whether the run's frames count as allocated memory in the paper's
    /// sense (process, kernel, or page cache) rather than free-list memory.
    #[must_use]
    pub fn allocated(&self) -> bool {
        self.state != FrameState::Free
    }
}

/// Event counters exposed for tests, ablations, and the performance model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// `fork` calls completed.
    pub forks: u64,
    /// Processes torn down.
    pub exits: u64,
    /// Copy-on-write faults that duplicated a frame.
    pub cow_breaks: u64,
    /// Pages cleared by any policy or by `O_NOCACHE` eviction.
    pub pages_zeroed: u64,
    /// Frames handed out by the page allocator.
    pub frames_allocated: u64,
    /// Frames returned to the free lists.
    pub frames_freed: u64,
    /// User heap allocations served.
    pub heap_allocs: u64,
    /// User heap frees served.
    pub heap_frees: u64,
    /// Page-cache fills.
    pub cache_inserts: u64,
    /// Page-cache evictions.
    pub cache_evictions: u64,
    /// Pages evicted to the swap device (one event per page written out).
    pub swap_writes: u64,
    /// Pages faulted back in from the swap device.
    pub swap_ins: u64,
    /// Dirty page-cache pages flushed to their backing file.
    pub writebacks: u64,
    /// Duplicate anonymous frames retired by `merge_identical_pages`.
    pub pages_merged: u64,
    /// kmalloc objects handed out.
    pub kmallocs: u64,
    /// kmalloc objects freed (back to their slab, not the page allocator).
    pub kfrees: u64,
    /// Operations forced to fail (or processes killed) by the installed
    /// [`FaultPlan`].
    pub faults_injected: u64,
    /// `mlock` calls refused, whether by the `memlock_limit` cap or by fault
    /// injection.
    pub mlock_denials: u64,
    /// Processes killed by a [`FaultPlan`] kill decision.
    pub fault_kills: u64,
}

/// The simulated machine. See the crate docs for an overview.
#[derive(Debug, Clone)]
pub struct Kernel {
    config: MachineConfig,
    phys: Vec<u8>,
    frames: Vec<Frame>,
    free: FreeLists,
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
    vfs: Vfs,
    /// Ordered, so reclaim/eviction victim order — and hence free-list order
    /// and frame-reuse leak locations — is identical run to run. (This was a
    /// `HashMap` once; `RandomState` made eviction order nondeterministic.)
    page_cache: BTreeMap<(FileId, u64), FrameId>,
    /// Page-cache pages whose contents are newer than their backing file.
    /// Dirty pages are skipped by reclaim and flushed by [`Self::writeback`].
    dirty_cache: BTreeSet<(FileId, u64)>,
    /// The swap device: slot `i` occupies bytes
    /// `[i * PAGE_SIZE, (i + 1) * PAGE_SIZE)`. Slots are reused, so the
    /// device stays bounded by peak swap residency, not by event count.
    swap: Vec<u8>,
    /// Per-slot metadata; `None` marks a slot free for reuse (its stale bytes
    /// stay on the device, as on a real partition).
    swap_slots: Vec<Option<SwapSlot>>,
    slab: SlabAllocator,
    stats: KernelStats,
    fault_plan: FaultPlan,
    /// Global count of fallible operations attempted since boot — the index
    /// space [`FaultPlan::fail_at_index`] addresses.
    op_index: u64,
    /// Per-class occurrence counters (1-based after increment), indexed by
    /// [`FaultOp::index`].
    op_counts: [u64; 9],
    /// Monotone clock stamping [`Self::write_gens`] / [`Self::state_gens`].
    /// Every stamp is unique, so "frame F at generation G" names exactly one
    /// byte image — what lets incremental scanners skip clean frames.
    gen_clock: u64,
    /// Per-frame generation of the last byte mutation (write, zero, copy).
    write_gens: Vec<u64>,
    /// Per-frame generation of the last *metadata* change (state, refcount,
    /// lock bit, mappings, cache key) — tracked separately so attribution can
    /// be refreshed without rescanning unchanged bytes.
    state_gens: Vec<u64>,
}

impl Kernel {
    /// Boots a machine with the given configuration.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        let num_frames = config.num_frames();
        Self {
            config,
            phys: vec![0u8; num_frames * PAGE_SIZE],
            frames: vec![Frame::free(); num_frames],
            free: FreeLists::new(num_frames, config.hot_list_max),
            procs: BTreeMap::new(),
            next_pid: 1,
            vfs: Vfs::default(),
            page_cache: BTreeMap::new(),
            dirty_cache: BTreeSet::new(),
            swap: Vec::new(),
            swap_slots: Vec::new(),
            slab: SlabAllocator::default(),
            stats: KernelStats::default(),
            fault_plan: FaultPlan::default(),
            op_index: 0,
            op_counts: [0; 9],
            gen_clock: 0,
            write_gens: vec![0; num_frames],
            state_gens: vec![0; num_frames],
        }
    }

    // ------------------------------------------------------------------
    // Frame generations (dirty tracking for incremental scanners)
    // ------------------------------------------------------------------

    /// Stamps `f` as byte-dirty. Called by every path that mutates `phys`.
    fn touch_bytes(&mut self, f: FrameId) {
        self.gen_clock += 1;
        self.write_gens[f.0] = self.gen_clock;
    }

    /// Stamps `f` as metadata-dirty. Called by every path that changes a
    /// frame's state, refcount, lock bit, reverse mappings, or cache key.
    fn touch_state(&mut self, f: FrameId) {
        self.gen_clock += 1;
        self.state_gens[f.0] = self.gen_clock;
    }

    /// Generation of the last byte mutation of frame `f` (0 = never written
    /// since boot). Two equal generations guarantee bit-identical contents.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[must_use]
    pub fn write_generation(&self, f: FrameId) -> u64 {
        self.write_gens[f.0]
    }

    /// Generation of the last metadata change of frame `f` (0 = untouched
    /// since boot). Equal generations guarantee an identical [`FrameView`].
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[must_use]
    pub fn state_generation(&self, f: FrameId) -> u64 {
        self.state_gens[f.0]
    }

    /// Current value of the monotone generation clock. Strictly increases
    /// with every byte or metadata mutation; a snapshot whose clock moved
    /// backwards (or changed frame count) is a *different* machine, which is
    /// how incremental scanners detect a mismatched kernel.
    #[must_use]
    pub fn generation_clock(&self) -> u64 {
        self.gen_clock
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs a fault schedule. Replaces any previous plan; counters keep
    /// running, so a plan installed mid-run addresses the same index space a
    /// probe run with an empty plan observed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Removes the fault schedule (counters keep advancing).
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = FaultPlan::default();
    }

    /// The currently installed fault schedule.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Number of fallible operations attempted since boot. Advances
    /// identically with or without an installed plan, so `(seed, op_index)`
    /// replays: a probe run discovers the indices a targeted plan addresses.
    #[must_use]
    pub fn op_index(&self) -> u64 {
        self.op_index
    }

    /// Occurrences of one operation class attempted since boot — the
    /// occurrence space [`FaultPlan::fail_nth`] addresses (its next
    /// occurrence is `op_count(op) + 1`).
    #[must_use]
    pub fn op_count(&self, op: FaultOp) -> u64 {
        self.op_counts[op.index()]
    }

    /// Counts this operation and asks the plan whether it proceeds. Every
    /// fallible entry point calls this exactly once per attempt, faulted or
    /// not — the counters are what make plans replayable.
    fn fault_check(&mut self, op: FaultOp, pid: Option<Pid>) -> SimResult<()> {
        let idx = self.op_index;
        self.op_index += 1;
        self.op_counts[op.index()] += 1;
        let occurrence = self.op_counts[op.index()];
        match self.fault_plan.decide(op, occurrence, idx) {
            FaultDecision::Allow => Ok(()),
            FaultDecision::Fail => {
                self.stats.faults_injected += 1;
                Err(match op {
                    FaultOp::Mlock => {
                        self.stats.mlock_denials += 1;
                        SimError::MlockDenied
                    }
                    _ => SimError::OutOfMemory,
                })
            }
            FaultDecision::Kill => {
                self.stats.faults_injected += 1;
                match pid {
                    Some(p) => {
                        if self.alive(p) {
                            self.stats.fault_kills += 1;
                            let _ = self.exit(p);
                        }
                        Err(SimError::NoSuchProcess(p))
                    }
                    // No acting process to kill (e.g. kmalloc): plain failure.
                    None => Err(SimError::OutOfMemory),
                }
            }
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Event counters accumulated since boot.
    #[must_use]
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Raw simulated physical memory — what a memory-disclosure attack sees.
    #[must_use]
    pub fn phys(&self) -> &[u8] {
        &self.phys
    }

    /// A cold-boot image of physical memory: every bit that is `1` decays
    /// to `0` independently with probability `decay_rate`, modeling DRAM
    /// remanence loss after power-off (Halderman et al.'s ground state;
    /// decay is one-sided, so an observed `1` in the image is certain).
    ///
    /// Deterministic in `(seed, decay_rate)` and the current memory
    /// contents: each frame decays under its own [`Rng64`] forked from the
    /// frame index, so images are reproducible regardless of scan order or
    /// parallelism. `decay_rate <= 0` returns a bit-identical copy of
    /// [`Self::phys`]; the capture itself never mutates machine state.
    #[must_use]
    pub fn snapshot_decayed(&self, seed: u64, decay_rate: f64) -> Vec<u8> {
        let mut image = self.phys.clone();
        if decay_rate <= 0.0 {
            return image;
        }
        for frame in 0..self.frames.len() {
            let mut rng =
                Rng64::new(seed ^ (frame as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let start = frame * PAGE_SIZE;
            for byte in &mut image[start..start + PAGE_SIZE] {
                if *byte == 0 {
                    // No 1-bits to decay; skipping draws no randomness, but
                    // each 1-bit elsewhere still decays independently.
                    continue;
                }
                let mut mask = 0u8;
                for bit in 0..8 {
                    if *byte & (1 << bit) != 0 && rng.gen_bool(decay_rate) {
                        mask |= 1 << bit;
                    }
                }
                *byte &= !mask;
            }
        }
        image
    }

    /// Number of physical page frames.
    #[must_use]
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Frames currently available for allocation.
    #[must_use]
    pub fn available_frames(&self) -> usize {
        self.free.available()
    }

    /// Frames sitting on a free list with possibly-stale contents.
    #[must_use]
    pub fn free_listed_frames(&self) -> usize {
        self.free.listed()
    }

    /// The bytes of one frame.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[must_use]
    pub fn frame_bytes(&self, f: FrameId) -> &[u8] {
        &self.phys[f.base()..f.base() + PAGE_SIZE]
    }

    /// Metadata view of one frame.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[must_use]
    pub fn frame_view(&self, f: FrameId) -> FrameView {
        let fr = &self.frames[f.0];
        let mut owners: Vec<Pid> = fr.mappings.iter().map(|&(p, _)| p).collect();
        owners.sort_unstable();
        owners.dedup();
        FrameView {
            state: fr.state,
            refcount: fr.refcount,
            locked: fr.locked,
            owners,
            cache_file: fr.cache_key.map(|(fid, _)| fid),
        }
    }

    /// Whether the frame currently belongs to *allocated* memory in the
    /// paper's sense (process, kernel, or page cache), as opposed to the free
    /// lists.
    #[must_use]
    pub fn is_allocated(&self, f: FrameId) -> bool {
        self.frames[f.0].state != FrameState::Free
    }

    /// The zero-copy frame-run view: adjacent frames with the same
    /// allocation state coalesced into one contiguous borrowed slice each.
    /// See [`FrameRun`] for the partition contract and the straddle caveat.
    #[must_use]
    pub fn frame_runs(&self) -> Vec<FrameRun<'_>> {
        let mut runs: Vec<FrameRun<'_>> = Vec::new();
        let mut start = 0usize;
        while start < self.frames.len() {
            let state = self.frames[start].state;
            let mut end = start + 1;
            while end < self.frames.len() && self.frames[end].state == state {
                end += 1;
            }
            runs.push(FrameRun {
                start: FrameId(start),
                frames: end - start,
                state,
                bytes: &self.phys[start * PAGE_SIZE..end * PAGE_SIZE],
            });
            start = end;
        }
        runs
    }

    // ------------------------------------------------------------------
    // Page allocator
    // ------------------------------------------------------------------

    fn zero_frame(&mut self, f: FrameId) {
        self.phys[f.base()..f.base() + PAGE_SIZE].fill(0);
        self.touch_bytes(f);
        self.stats.pages_zeroed += 1;
    }

    /// Core allocation path. Anonymous and page-cache pages are cleared on
    /// allocation (as real kernels clear pages destined for user space);
    /// kernel pages are *not* — that omission is the ext2 leak.
    ///
    /// When the free lists run dry, the allocator reclaims page-cache frames
    /// (ordinary memory-pressure eviction — which does *not* clear the
    /// evicted contents on a stock kernel, another data-lifetime hazard).
    fn alloc_frame(&mut self, state: FrameState) -> SimResult<FrameId> {
        debug_assert_ne!(state, FrameState::Free);
        self.fault_check(FaultOp::FrameAlloc, None)?;
        if self.free.available() == 0 {
            self.reclaim_page_cache(1);
        }
        let f = self.free.alloc().ok_or(SimError::OutOfMemory)?;
        self.stats.frames_allocated += 1;
        if matches!(state, FrameState::Anon | FrameState::PageCache) {
            self.zero_frame(f);
        }
        let fr = &mut self.frames[f.0];
        fr.state = state;
        fr.refcount = 1;
        fr.locked = false;
        fr.mappings.clear();
        fr.cache_key = None;
        self.touch_state(f);
        Ok(f)
    }

    /// Returns a frame to the free lists, applying `zero_on_free`.
    fn free_frame(&mut self, f: FrameId) {
        if self.config.policy.zero_on_free {
            self.zero_frame(f);
        }
        let fr = &mut self.frames[f.0];
        debug_assert_ne!(fr.state, FrameState::Free, "double free of {f}");
        fr.state = FrameState::Free;
        fr.refcount = 0;
        fr.locked = false;
        fr.mappings.clear();
        fr.cache_key = None;
        self.touch_state(f);
        self.free.free(f);
        self.stats.frames_freed += 1;
    }

    /// Allocates `n` kernel pages (e.g. ext2 directory block buffers). Their
    /// contents are whatever the previous owner left there.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when physical memory is exhausted.
    pub fn alloc_kernel_pages(&mut self, n: usize) -> SimResult<Vec<FrameId>> {
        self.ensure_free_frames(n)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.alloc_frame(FrameState::Kernel) {
                Ok(f) => out.push(f),
                Err(e) => {
                    // All-or-nothing: return the frames already taken so a
                    // mid-batch failure cannot strand allocated pages.
                    for f in out {
                        self.free_frame(f);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Frees kernel pages obtained from [`Self::alloc_kernel_pages`].
    pub fn free_kernel_pages(&mut self, frames: &[FrameId]) {
        for &f in frames {
            self.free_frame(f);
        }
    }

    /// Writes into a kernel page (e.g. the dirent header the ext2 exploit
    /// leaves at the start of each leaked block).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page or the frame is not kernel-owned.
    pub fn write_kernel_page(&mut self, f: FrameId, offset: usize, bytes: &[u8]) {
        assert_eq!(self.frames[f.0].state, FrameState::Kernel, "not a kernel page");
        assert!(offset + bytes.len() <= PAGE_SIZE, "write beyond page");
        self.phys[f.base() + offset..f.base() + offset + bytes.len()].copy_from_slice(bytes);
        self.touch_bytes(f);
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Creates a fresh process with an empty address space.
    pub fn spawn(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid, Process::new(None));
        pid
    }

    /// Whether `pid` names a live process.
    #[must_use]
    pub fn alive(&self, pid: Pid) -> bool {
        self.procs.contains_key(&pid)
    }

    /// Live process ids, ascending.
    #[must_use]
    pub fn processes(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    fn proc(&self, pid: Pid) -> SimResult<&Process> {
        self.procs.get(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    fn proc_mut(&mut self, pid: Pid) -> SimResult<&mut Process> {
        self.procs.get_mut(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    /// Forks `parent`, sharing every mapped page copy-on-write.
    ///
    /// No physical page is duplicated until one side writes — the property
    /// the paper's `RSA_memory_align` exploits to keep exactly one physical
    /// copy of the key across any number of worker processes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] when `parent` is not alive.
    pub fn fork(&mut self, parent: Pid) -> SimResult<Pid> {
        self.fault_check(FaultOp::Fork, Some(parent))?;
        let child_pid = Pid(self.next_pid);
        let parent_proc = self.procs.get_mut(&parent).ok_or(SimError::NoSuchProcess(parent))?;
        self.next_pid += 1;

        let mut child = Process::new(Some(parent));
        child.heap = parent_proc.heap.clone();
        child.next_special = parent_proc.next_special;
        child.vma_kind = parent_proc.vma_kind.clone();
        child.locked_vpns = parent_proc.locked_vpns.clone();
        // Swapped pages are shared too: both sides reference the same slot
        // until one faults the page back in (swap-in always privatises).
        child.swapped = parent_proc.swapped.clone();
        let shared_slots: Vec<usize> = child.swapped.values().map(|s| s.slot).collect();
        for slot in shared_slots {
            if let Some(s) = self.swap_slots[slot].as_mut() {
                s.refs += 1;
            }
        }

        // Share all pages COW.
        let mut entries: Vec<(u64, crate::process::Pte)> = Vec::new();
        for (&vpn, pte) in parent_proc.page_table.iter_mut() {
            pte.cow = true;
            entries.push((vpn, *pte));
        }
        for (vpn, pte) in entries {
            child.page_table.insert(vpn, pte);
            let fr = &mut self.frames[pte.frame.0];
            fr.refcount += 1;
            fr.mappings.push((child_pid, vpn));
            self.touch_state(pte.frame);
        }
        self.procs.insert(child_pid, child);
        self.stats.forks += 1;
        Ok(child_pid)
    }

    /// Unmaps one page from a process, applying `zero_on_unmap` when the
    /// process held the last reference, and freeing the frame when the
    /// reference count reaches zero.
    fn unmap_page(&mut self, pid: Pid, vpn: u64, frame: FrameId) {
        let fr = &mut self.frames[frame.0];
        fr.mappings.retain(|&(p, v)| !(p == pid && v == vpn));
        fr.refcount = fr.refcount.saturating_sub(1);
        let now_free = fr.refcount == 0;
        self.touch_state(frame);
        if now_free {
            if self.config.policy.zero_on_unmap {
                // The zap_pte_range patch clears when page_count == 1.
                self.zero_frame(frame);
            }
            self.free_frame(frame);
        }
    }

    /// Terminates a process, unmapping its whole address space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchProcess`] when `pid` is not alive.
    pub fn exit(&mut self, pid: Pid) -> SimResult<()> {
        let proc = self.procs.remove(&pid).ok_or(SimError::NoSuchProcess(pid))?;
        for (vpn, pte) in proc.page_table {
            self.unmap_page(pid, vpn, pte.frame);
        }
        // Release swap-slot references; the slot bytes stay on the device
        // (real swap partitions are never cleared on exit).
        for swapped in proc.swapped.values() {
            self.unref_swap_slot(swapped.slot);
        }
        self.stats.exits += 1;
        Ok(())
    }

    /// Resolves a virtual address to its physical frame.
    #[must_use]
    pub fn translate(&self, pid: Pid, addr: VAddr) -> Option<FrameId> {
        self.procs.get(&pid)?.pte(addr).map(|p| p.frame)
    }

    // ------------------------------------------------------------------
    // User heap
    // ------------------------------------------------------------------

    /// `malloc(size)` for `pid`.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchProcess`] or [`SimError::OutOfMemory`].
    pub fn heap_alloc(&mut self, pid: Pid, size: usize) -> SimResult<VAddr> {
        self.fault_check(FaultOp::HeapAlloc, Some(pid))?;
        // Reserve a conservative page estimate before mutating heap state so
        // OOM cannot leave the chunk map inconsistent; reclaim page cache
        // first when the free lists are short.
        let worst_pages = size / PAGE_SIZE + 2;
        self.ensure_free_frames(worst_pages)?;
        let proc = self.proc_mut(pid)?;
        let (addr, grow_bytes) = proc.heap.alloc(size as u64);
        if grow_bytes > 0 {
            let first_new_vpn = {
                // Pages [old mapped end, new mapped end) must be mapped.
                let new_end = proc.heap.brk().next_multiple_of(PAGE_SIZE as u64);
                (new_end - grow_bytes) / PAGE_SIZE as u64
            };
            let pages = (grow_bytes / PAGE_SIZE as u64) as usize;
            for i in 0..pages {
                let vpn = first_new_vpn + i as u64;
                let frame = match self.alloc_frame(FrameState::Anon) {
                    Ok(f) => f,
                    Err(e) => {
                        // Transactional: unmap the pages mapped so far and
                        // retract the chunk + break growth, restoring the
                        // heap to its exact pre-call geometry.
                        for j in 0..i as u64 {
                            let vpn = first_new_vpn + j;
                            let proc = self.proc_mut(pid)?;
                            if let Some(pte) = proc.page_table.remove(&vpn) {
                                proc.vma_kind.remove(&vpn);
                                proc.locked_vpns.remove(&vpn);
                                self.unmap_page(pid, vpn, pte.frame);
                            }
                        }
                        let proc = self.proc_mut(pid)?;
                        proc.heap.retract(addr);
                        return Err(e);
                    }
                };
                self.frames[frame.0].mappings.push((pid, vpn));
                self.touch_state(frame);
                let proc = self.proc_mut(pid)?;
                proc.page_table.insert(
                    vpn,
                    crate::process::Pte {
                        frame,
                        cow: false,
                        readonly: false,
                    },
                );
                proc.vma_kind.insert(vpn, VmaKind::Heap);
            }
        }
        self.stats.heap_allocs += 1;
        Ok(addr)
    }

    /// Size in bytes of the live heap chunk at `addr`.
    #[must_use]
    pub fn heap_chunk_size(&self, pid: Pid, addr: VAddr) -> Option<usize> {
        self.procs.get(&pid)?.heap.chunk_size(addr).map(|s| s as usize)
    }

    /// `free(addr)` for `pid`. The chunk's bytes are *not* cleared — this is
    /// the data-lifetime hazard the paper measures. Trailing fully-free pages
    /// are returned to the kernel when [`MachineConfig::heap_trim`] is set.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadFree`] for pointers that are not live chunk
    /// starts (double frees included).
    pub fn heap_free(&mut self, pid: Pid, addr: VAddr) -> SimResult<()> {
        if self.config.secure_dealloc {
            // Chow-style secure deallocation: the allocator clears the chunk
            // before recycling it.
            let size = self
                .heap_chunk_size(pid, addr)
                .ok_or(SimError::BadFree(addr))?;
            let zeros = vec![0u8; size];
            self.write_bytes(pid, addr, &zeros)?;
        }
        let trim = self.config.heap_trim;
        let proc = self.proc_mut(pid)?;
        let outcome = proc
            .heap
            .free(addr, trim)
            .map_err(|()| SimError::BadFree(addr))?;
        self.stats.heap_frees += 1;
        if let Some(trim_to) = outcome.trim_to {
            let first_vpn = trim_to / PAGE_SIZE as u64;
            let proc = self.proc_mut(pid)?;
            let doomed: Vec<(u64, FrameId)> = proc
                .page_table
                .range(first_vpn..)
                .filter(|(vpn, _)| proc.vma_kind.get(vpn) == Some(&VmaKind::Heap))
                .map(|(&vpn, pte)| (vpn, pte.frame))
                .collect();
            for (vpn, frame) in doomed {
                let proc = self.proc_mut(pid)?;
                proc.page_table.remove(&vpn);
                proc.vma_kind.remove(&vpn);
                proc.locked_vpns.remove(&vpn);
                self.unmap_page(pid, vpn, frame);
            }
            // Trimmed pages that are sitting in swap are released too (their
            // slot bytes stay behind on the device).
            let proc = self.proc_mut(pid)?;
            let doomed_swapped: Vec<(u64, usize)> = proc
                .swapped
                .range(first_vpn..)
                .filter(|(vpn, _)| proc.vma_kind.get(vpn) == Some(&VmaKind::Heap))
                .map(|(&vpn, s)| (vpn, s.slot))
                .collect();
            for (vpn, slot) in doomed_swapped {
                let proc = self.proc_mut(pid)?;
                proc.swapped.remove(&vpn);
                proc.vma_kind.remove(&vpn);
                self.unref_swap_slot(slot);
            }
        }
        Ok(())
    }

    /// `memset(addr, 0, chunk_size); free(addr)` — what a security-conscious
    /// application does.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::heap_free`].
    pub fn heap_free_zeroed(&mut self, pid: Pid, addr: VAddr) -> SimResult<()> {
        let size = self
            .heap_chunk_size(pid, addr)
            .ok_or(SimError::BadFree(addr))?;
        let zeros = vec![0u8; size];
        self.write_bytes(pid, addr, &zeros)?;
        self.heap_free(pid, addr)
    }

    // ------------------------------------------------------------------
    // Special (page-aligned, lockable) regions
    // ------------------------------------------------------------------

    /// Allocates a page-aligned special region of `npages` pages — the
    /// simulated `posix_memalign`. The frames are zero-filled.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchProcess`] or [`SimError::OutOfMemory`].
    pub fn alloc_special_region(&mut self, pid: Pid, npages: usize) -> SimResult<VAddr> {
        self.fault_check(FaultOp::SpecialAlloc, Some(pid))?;
        self.ensure_free_frames(npages)?;
        let proc = self.proc_mut(pid)?;
        let base = proc.next_special.max(SPECIAL_BASE);
        // One guard page of address space between regions.
        proc.next_special = base + ((npages as u64 + 1) * PAGE_SIZE as u64);
        let first_vpn = base / PAGE_SIZE as u64;
        for i in 0..npages {
            let frame = match self.alloc_frame(FrameState::Anon) {
                Ok(f) => f,
                Err(e) => {
                    // Transactional: unmap the (still zero-filled) pages
                    // mapped so far and restore the region cursor.
                    for j in 0..i as u64 {
                        let vpn = first_vpn + j;
                        let proc = self.proc_mut(pid)?;
                        if let Some(pte) = proc.page_table.remove(&vpn) {
                            proc.vma_kind.remove(&vpn);
                            proc.locked_vpns.remove(&vpn);
                            self.unmap_page(pid, vpn, pte.frame);
                        }
                    }
                    self.proc_mut(pid)?.next_special = base;
                    return Err(e);
                }
            };
            let vpn = first_vpn + i as u64;
            self.frames[frame.0].mappings.push((pid, vpn));
            self.touch_state(frame);
            let proc = self.proc_mut(pid)?;
            proc.page_table.insert(
                vpn,
                crate::process::Pte {
                    frame,
                    cow: false,
                    readonly: false,
                },
            );
            proc.vma_kind.insert(vpn, VmaKind::Special);
        }
        Ok(VAddr(base))
    }

    /// Unmaps a special region previously returned by
    /// [`Self::alloc_special_region`].
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadAddress`] when any page is unmapped.
    pub fn free_special_region(&mut self, pid: Pid, base: VAddr, npages: usize) -> SimResult<()> {
        let first_vpn = base.vpn();
        for i in 0..npages as u64 {
            let vpn = first_vpn + i;
            let proc = self.proc_mut(pid)?;
            if let Some(pte) = proc.page_table.remove(&vpn) {
                proc.vma_kind.remove(&vpn);
                proc.locked_vpns.remove(&vpn);
                self.unmap_page(pid, vpn, pte.frame);
            } else if let Some(swapped) = proc.swapped.remove(&vpn) {
                // Freed while evicted: release the slot reference without
                // faulting the page back in (its bytes stay on the device).
                proc.vma_kind.remove(&vpn);
                proc.locked_vpns.remove(&vpn);
                self.unref_swap_slot(swapped.slot);
            } else {
                return Err(SimError::BadAddress(VAddr(vpn * PAGE_SIZE as u64)));
            }
        }
        Ok(())
    }

    /// `mlock(addr, len)`: pins the covered frames so the swap path skips
    /// them.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadAddress`] when any page is unmapped, or
    /// [`SimError::MlockDenied`] when the lock would push the process past
    /// [`MachineConfig::memlock_limit`] (or a fault plan refuses the call).
    pub fn mlock(&mut self, pid: Pid, addr: VAddr, len: usize) -> SimResult<()> {
        self.fault_check(FaultOp::Mlock, Some(pid))?;
        let first = addr.vpn();
        let last = VAddr(addr.0 + len.max(1) as u64 - 1).vpn();
        if let Some(limit) = self.config.memlock_limit {
            let proc = self.proc(pid)?;
            let newly = (first..=last)
                .filter(|vpn| !proc.locked_vpns.contains(vpn))
                .count();
            if (proc.locked_vpns.len() + newly) * PAGE_SIZE > limit {
                self.stats.mlock_denials += 1;
                return Err(SimError::MlockDenied);
            }
        }
        // mlock faults the covered range in before pinning it (as the real
        // syscall does), so a previously-evicted page comes back off swap.
        for vpn in first..=last {
            if self.proc(pid)?.swapped.contains_key(&vpn) {
                self.swap_in(pid, vpn)?;
            }
        }
        for vpn in first..=last {
            let proc = self.proc_mut(pid)?;
            let pte = *proc
                .page_table
                .get(&vpn)
                .ok_or(SimError::BadAddress(VAddr(vpn * PAGE_SIZE as u64)))?;
            proc.locked_vpns.insert(vpn);
            if !self.frames[pte.frame.0].locked {
                self.frames[pte.frame.0].locked = true;
                self.touch_state(pte.frame);
            }
        }
        Ok(())
    }

    /// `mprotect(addr, len, PROT_READ)` / back to writable: toggles write
    /// protection on the covered pages. With `readonly` set, any write
    /// through [`Self::write_bytes`] faults with [`SimError::ReadOnly`] —
    /// the enforcement the paper's `BN_FLG_STATIC_DATA` annotation implies
    /// for the aligned key region.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadAddress`] when any page is unmapped.
    pub fn mprotect_readonly(
        &mut self,
        pid: Pid,
        addr: VAddr,
        len: usize,
        readonly: bool,
    ) -> SimResult<()> {
        let first = addr.vpn();
        let last = VAddr(addr.0 + len.max(1) as u64 - 1).vpn();
        let proc = self.proc_mut(pid)?;
        // Validate all pages first so the change is all-or-nothing.
        for vpn in first..=last {
            if !proc.page_table.contains_key(&vpn) {
                return Err(SimError::BadAddress(VAddr(vpn * PAGE_SIZE as u64)));
            }
        }
        for vpn in first..=last {
            if let Some(pte) = proc.page_table.get_mut(&vpn) {
                pte.readonly = readonly;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Memory access
    // ------------------------------------------------------------------

    /// Writes `bytes` into the process address space, breaking copy-on-write
    /// sharing as a real write fault would.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadAddress`] when any page is unmapped, or
    /// [`SimError::OutOfMemory`] when a COW duplication cannot find a frame.
    pub fn write_bytes(&mut self, pid: Pid, addr: VAddr, bytes: &[u8]) -> SimResult<()> {
        let mut off = 0usize;
        while off < bytes.len() {
            let cur = addr.add(off as u64);
            let vpn = cur.vpn();
            let page_off = cur.page_offset();
            let n = (PAGE_SIZE - page_off).min(bytes.len() - off);
            // A store to a swapped page is a major fault: bring it back in
            // (fallible — the swap read or the frame allocation can fail).
            if self.proc(pid)?.swapped.contains_key(&vpn) {
                self.swap_in(pid, vpn)?;
            }
            let pte = self
                .proc(pid)?
                .page_table
                .get(&vpn)
                .copied()
                .ok_or(SimError::BadAddress(cur))?;
            if pte.readonly {
                return Err(SimError::ReadOnly(cur));
            }
            let frame = if pte.cow {
                self.cow_break(pid, vpn, pte)?
            } else {
                pte.frame
            };
            let base = frame.base() + page_off;
            self.phys[base..base + n].copy_from_slice(&bytes[off..off + n]);
            self.touch_bytes(frame);
            off += n;
        }
        Ok(())
    }

    /// Handles a write fault on a COW page.
    fn cow_break(&mut self, pid: Pid, vpn: u64, pte: crate::process::Pte) -> SimResult<FrameId> {
        if self.frames[pte.frame.0].refcount == 1 {
            // Last owner: just drop the COW marking.
            let proc = self.proc_mut(pid)?;
            if let Some(p) = proc.page_table.get_mut(&vpn) {
                p.cow = false;
            }
            return Ok(pte.frame);
        }
        // Shared: duplicate the frame. This byte copy is precisely how key
        // material multiplies across worker processes.
        let new = self.alloc_frame(FrameState::Anon)?;
        let (src, dst) = (pte.frame.base(), new.base());
        let (lo, hi) = if src < dst { (src, dst) } else { (dst, src) };
        let (a, b) = self.phys.split_at_mut(hi);
        if src < dst {
            b[..PAGE_SIZE].copy_from_slice(&a[lo..lo + PAGE_SIZE]);
        } else {
            a[lo..lo + PAGE_SIZE].copy_from_slice(&b[..PAGE_SIZE]);
        }
        self.touch_bytes(new);
        {
            let old = &mut self.frames[pte.frame.0];
            old.mappings.retain(|&(p, v)| !(p == pid && v == vpn));
            old.refcount -= 1;
        }
        self.touch_state(pte.frame);
        self.frames[new.0].mappings.push((pid, vpn));
        let locked = {
            let proc = self.proc_mut(pid)?;
            if let Some(p) = proc.page_table.get_mut(&vpn) {
                p.frame = new;
                p.cow = false;
            }
            proc.locked_vpns.contains(&vpn)
        };
        self.frames[new.0].locked = locked;
        self.touch_state(new);
        self.stats.cow_breaks += 1;
        Ok(new)
    }

    /// Reads `len` bytes from the process address space.
    ///
    /// Reading takes `&self`, so it cannot service a major fault: a page
    /// that has been evicted to swap surfaces as [`SimError::SwappedOut`].
    /// Fault it back in first with [`Self::touch_pages`] (or any write).
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadAddress`] when any page is unmapped, or
    /// [`SimError::SwappedOut`] when a covered page is on the swap device.
    pub fn read_bytes(&self, pid: Pid, addr: VAddr, len: usize) -> SimResult<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let cur = addr.add(off as u64);
            let proc = self.proc(pid)?;
            if proc.swapped.contains_key(&cur.vpn()) {
                return Err(SimError::SwappedOut(cur));
            }
            let pte = proc.pte(cur).ok_or(SimError::BadAddress(cur))?;
            let page_off = cur.page_offset();
            let n = (PAGE_SIZE - page_off).min(len - off);
            let base = pte.frame.base() + page_off;
            out.extend_from_slice(&self.phys[base..base + n]);
            off += n;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Files and the page cache
    // ------------------------------------------------------------------

    /// Creates a file on the simulated disk.
    pub fn create_file(&mut self, name: &str, content: &[u8]) -> FileId {
        self.vfs.create(name, content.to_vec())
    }

    /// Length of a file's contents.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchFile`].
    pub fn file_len(&self, fid: FileId) -> SimResult<usize> {
        Ok(self.vfs.get(fid).ok_or(SimError::NoSuchFile(fid))?.content.len())
    }

    /// Reads a whole file into a fresh heap buffer of `pid`, populating the
    /// page cache on the way (unless already resident).
    ///
    /// With `nocache` set — the paper's `O_NOCACHE` flag — the file's cache
    /// pages are removed and cleared immediately after the read, so the PEM
    /// key file does not linger in kernel memory.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchFile`], [`SimError::NoSuchProcess`], or
    /// [`SimError::OutOfMemory`].
    pub fn read_file(&mut self, pid: Pid, fid: FileId, nocache: bool) -> SimResult<(VAddr, usize)> {
        let mut content = self
            .vfs
            .get(fid)
            .ok_or(SimError::NoSuchFile(fid))?
            .content
            .clone();
        // Dirty cache pages hold data newer than the backing file; a read
        // observes them (this is write-back caching, not write-through).
        let dirty: Vec<(FileId, u64)> = self
            .dirty_cache
            .iter()
            .filter(|(f, _)| *f == fid)
            .copied()
            .collect();
        for key in dirty {
            if let Some(&frame) = self.page_cache.get(&key) {
                let start = key.1 as usize * PAGE_SIZE;
                let end = (start + PAGE_SIZE).min(content.len());
                if start < content.len() {
                    content[start..end]
                        .copy_from_slice(&self.phys[frame.base()..frame.base() + (end - start)]);
                }
            }
        }
        let npages = content.len().div_ceil(PAGE_SIZE).max(1);
        for idx in 0..npages as u64 {
            if self.page_cache.contains_key(&(fid, idx)) {
                continue;
            }
            let frame = self.alloc_frame(FrameState::PageCache)?;
            let start = idx as usize * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(content.len());
            if start < content.len() {
                self.phys[frame.base()..frame.base() + (end - start)]
                    .copy_from_slice(&content[start..end]);
                self.touch_bytes(frame);
            }
            self.frames[frame.0].cache_key = Some((fid, idx));
            self.touch_state(frame);
            self.page_cache.insert((fid, idx), frame);
            self.stats.cache_inserts += 1;
        }

        let buf = self.heap_alloc(pid, content.len().max(1))?;
        self.write_bytes(pid, buf, &content)?;

        if nocache {
            self.evict_file_cache(fid, true);
        }
        Ok((buf, content.len()))
    }

    /// Number of page-cache pages currently holding `fid`.
    #[must_use]
    pub fn file_cached_pages(&self, fid: FileId) -> usize {
        self.page_cache.keys().filter(|(f, _)| *f == fid).count()
    }

    /// Writes `bytes` into `fid` at `offset` through the page cache: the
    /// covered cache pages are filled (allocating as needed), updated, and
    /// marked dirty. The backing file's *data* sees nothing until
    /// [`Self::writeback`] flushes — write-back caching, the window in which
    /// written secrets exist only in RAM. Extending writes grow the file
    /// with zeros immediately (size is metadata, data waits for writeback).
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchFile`], or with the frame-allocation
    /// failure modes when a cache page must be created.
    pub fn write_file(&mut self, fid: FileId, offset: usize, bytes: &[u8]) -> SimResult<()> {
        let entry = self.vfs.get_mut(fid).ok_or(SimError::NoSuchFile(fid))?;
        let file_end = offset + bytes.len();
        if entry.content.len() < file_end {
            entry.content.resize(file_end, 0);
        }
        let mut off = 0usize;
        while off < bytes.len() {
            let pos = offset + off;
            let idx = (pos / PAGE_SIZE) as u64;
            let page_off = pos % PAGE_SIZE;
            let n = (PAGE_SIZE - page_off).min(bytes.len() - off);
            let frame = match self.page_cache.get(&(fid, idx)) {
                Some(&f) => f,
                None => {
                    let f = self.alloc_frame(FrameState::PageCache)?;
                    // Fill from the backing file so a partial-page write
                    // cannot clobber the rest of the page at flush time.
                    let start = idx as usize * PAGE_SIZE;
                    let chunk = {
                        let content =
                            &self.vfs.get(fid).ok_or(SimError::NoSuchFile(fid))?.content;
                        let end = (start + PAGE_SIZE).min(content.len());
                        if start < content.len() {
                            content[start..end].to_vec()
                        } else {
                            Vec::new()
                        }
                    };
                    if !chunk.is_empty() {
                        self.phys[f.base()..f.base() + chunk.len()].copy_from_slice(&chunk);
                    }
                    self.frames[f.0].cache_key = Some((fid, idx));
                    self.touch_state(f);
                    self.page_cache.insert((fid, idx), f);
                    self.stats.cache_inserts += 1;
                    f
                }
            };
            let base = frame.base() + page_off;
            self.phys[base..base + n].copy_from_slice(&bytes[off..off + n]);
            self.touch_bytes(frame);
            self.dirty_cache.insert((fid, idx));
            off += n;
        }
        Ok(())
    }

    /// Flushes up to `max_pages` dirty page-cache pages to their backing
    /// files, in `(file, page)` order. Each page flushed is one `Writeback`
    /// fault operation; on an injected failure the pages already flushed
    /// stay flushed and the rest stay dirty.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::OutOfMemory`] when the installed [`FaultPlan`]
    /// targets a `Writeback` operation.
    pub fn writeback(&mut self, max_pages: usize) -> SimResult<usize> {
        let victims: Vec<(FileId, u64)> =
            self.dirty_cache.iter().take(max_pages).copied().collect();
        let mut flushed = 0usize;
        for key in victims {
            self.fault_check(FaultOp::Writeback, None)?;
            if let Some(&frame) = self.page_cache.get(&key) {
                self.flush_cache_page(key, frame);
            }
            self.dirty_cache.remove(&key);
            self.stats.writebacks += 1;
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Copies one cache page's bytes over its backing-file range (clamped to
    /// the file's length — size is metadata, set at write time).
    fn flush_cache_page(&mut self, key: (FileId, u64), frame: FrameId) {
        let start = key.1 as usize * PAGE_SIZE;
        let base = frame.base();
        if let Some(entry) = self.vfs.get_mut(key.0) {
            let end = (start + PAGE_SIZE).min(entry.content.len());
            if start < entry.content.len() {
                entry.content[start..end]
                    .copy_from_slice(&self.phys[base..base + (end - start)]);
            }
        }
    }

    /// Number of dirty page-cache pages awaiting writeback.
    #[must_use]
    pub fn dirty_cache_pages(&self) -> usize {
        self.dirty_cache.len()
    }

    /// An image of the simulated disk: every file's contents, concatenated
    /// in creation order. Together with [`Self::swap_bytes`] this is the
    /// attackable persistent storage of the paper's threat model — what a
    /// stolen disk or a backup tape reveals.
    #[must_use]
    pub fn disk_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for fid in self.vfs.ids() {
            if let Some(entry) = self.vfs.get(fid) {
                out.extend_from_slice(&entry.content);
            }
        }
        out
    }

    /// The concatenated contents of every *world-readable* file — what an
    /// unprivileged local reader sees. Mode-0600 files (see
    /// [`Self::chmod_private`]) are skipped.
    #[must_use]
    pub fn public_disk_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for fid in self.vfs.ids() {
            if let Some(entry) = self.vfs.get(fid) {
                if !entry.private {
                    out.extend_from_slice(&entry.content);
                }
            }
        }
        out
    }

    /// Marks a file mode 0600: excluded from [`Self::public_disk_bytes`].
    /// Servers apply this to their at-rest key files so the unprivileged
    /// disk channel measures page-cache leakage, not the key file itself.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchFile`] for an unknown id.
    pub fn chmod_private(&mut self, fid: FileId) -> SimResult<()> {
        self.vfs
            .get_mut(fid)
            .ok_or(SimError::NoSuchFile(fid))?
            .private = true;
        Ok(())
    }

    /// Ensures at least `want` frames are available, reclaiming page cache
    /// as needed.
    fn ensure_free_frames(&mut self, want: usize) -> SimResult<()> {
        let have = self.free.available();
        if have < want {
            self.reclaim_page_cache(want - have);
        }
        if self.free.available() < want {
            return Err(SimError::OutOfMemory);
        }
        Ok(())
    }

    /// Reclaims up to `n` page-cache frames under memory pressure (no
    /// clearing beyond what the kernel policy mandates). Returns how many
    /// frames were reclaimed.
    ///
    /// Victims are taken in key order (the `page_cache` map is ordered), so
    /// reclaim — and hence free-list order and frame-reuse leak locations —
    /// is identical run to run. Dirty pages are skipped: they hold data the
    /// backing file does not, and only [`Self::writeback`] may retire that.
    pub fn reclaim_page_cache(&mut self, n: usize) -> usize {
        let victims: Vec<(FileId, u64)> = self
            .page_cache
            .keys()
            .filter(|key| !self.dirty_cache.contains(*key))
            .take(n)
            .copied()
            .collect();
        let count = victims.len();
        for key in victims {
            if let Some(frame) = self.page_cache.remove(&key) {
                self.free_frame(frame);
                self.stats.cache_evictions += 1;
            }
        }
        count
    }

    /// Evicts a file from the page cache. With `clear`, pages are zeroed
    /// before being freed (the `remove_from_page_cache` + `clear_highpage`
    /// sequence of the paper's patch); without it, this models ordinary
    /// memory-pressure reclaim, which leaves the bytes behind.
    pub fn evict_file_cache(&mut self, fid: FileId, clear: bool) {
        let doomed: Vec<(FileId, u64)> = self
            .page_cache
            .keys()
            .filter(|(f, _)| *f == fid)
            .copied()
            .collect();
        for key in doomed {
            if let Some(frame) = self.page_cache.remove(&key) {
                // A dirty page cannot just be dropped: its contents are newer
                // than the backing file, so eviction flushes it synchronously
                // (no fault op — this is the non-fallible teardown path).
                if self.dirty_cache.remove(&key) {
                    self.flush_cache_page(key, frame);
                }
                if clear {
                    self.zero_frame(frame);
                }
                self.free_frame(frame);
                self.stats.cache_evictions += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Slab (kmalloc) — see `slab.rs` for why this is a zeroing-policy gap
    // ------------------------------------------------------------------

    /// `kmalloc(size)`: a kernel object from the matching slab class. The
    /// object's bytes are whatever the previous occupant left (real slabs do
    /// not clear on alloc unless `__GFP_ZERO`).
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::OutOfMemory`] when `size` exceeds the largest
    /// class or no page can back a new slab.
    pub fn kmalloc(&mut self, size: usize) -> SimResult<KObj> {
        self.fault_check(FaultOp::Kmalloc, None)?;
        let class = class_for(size).ok_or(SimError::OutOfMemory)?;
        if let Some(obj) = self.slab.take(class) {
            self.stats.kmallocs += 1;
            return Ok(obj);
        }
        let frame = self.alloc_frame(FrameState::Kernel)?;
        self.slab.add_page(class, frame);
        let obj = self.slab.take(class).expect("fresh slab page has objects");
        self.stats.kmallocs += 1;
        Ok(obj)
    }

    /// `kfree(obj)`: returns the object to its slab free list. **Its bytes
    /// remain in place** — the page stays allocated, so not even the
    /// `zero_on_free` policy touches them until [`Self::slab_shrink`].
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadFree`] on double frees.
    pub fn kfree(&mut self, obj: KObj) -> SimResult<()> {
        if !self.slab.give_back(obj) {
            return Err(SimError::BadFree(VAddr(obj.offset as u64)));
        }
        self.stats.kfrees += 1;
        Ok(())
    }

    /// Writes into a kmalloc'd object.
    ///
    /// # Panics
    ///
    /// Panics when the write exceeds the object's size class.
    pub fn kwrite(&mut self, obj: KObj, bytes: &[u8]) {
        assert!(bytes.len() <= obj.capacity(), "kwrite beyond object");
        let base = obj.frame.base() + obj.offset;
        self.phys[base..base + bytes.len()].copy_from_slice(bytes);
        self.touch_bytes(obj.frame);
    }

    /// Reads a kmalloc'd object's full contents (stale bytes included —
    /// which is precisely how slab infoleaks work).
    #[must_use]
    pub fn kread(&self, obj: KObj) -> Vec<u8> {
        let base = obj.frame.base() + obj.offset;
        self.phys[base..base + obj.capacity()].to_vec()
    }

    /// Shrinks the slab caches: fully-free slab pages are returned to the
    /// page allocator, where the kernel zeroing policy finally applies.
    /// Returns the number of pages released.
    pub fn slab_shrink(&mut self) -> usize {
        let reaped = self.slab.reap_empty_pages();
        let n = reaped.len();
        for f in reaped {
            self.free_frame(f);
        }
        n
    }

    /// Pages currently owned by slab caches (allocated kernel memory).
    #[must_use]
    pub fn slab_pages(&self) -> usize {
        self.slab.pages_owned()
    }

    /// Models data arriving through a tty line discipline: the kernel
    /// buffers `bytes` in a kmalloc'd object (a `tty_buffer`), delivers it,
    /// and frees the buffer — leaving the typed bytes (passphrases!) in the
    /// slab until the object is reused or the slab shrunk.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::OutOfMemory`] for lines over 2048 bytes.
    pub fn tty_input(&mut self, bytes: &[u8]) -> SimResult<()> {
        let obj = self.kmalloc(bytes.len().max(1))?;
        self.kwrite(obj, bytes);
        // The reader consumed it; the buffer goes back to the slab dirty.
        self.kfree(obj)
    }

    // ------------------------------------------------------------------
    // Swap
    // ------------------------------------------------------------------

    /// Lowest-index free swap slot, growing the device by one page only when
    /// every slot is referenced. Reuse keeps the device bounded by peak swap
    /// residency, not by event count.
    fn alloc_swap_slot(&mut self) -> usize {
        if let Some(i) = self.swap_slots.iter().position(Option::is_none) {
            return i;
        }
        self.swap_slots.push(None);
        self.swap.resize(self.swap.len() + PAGE_SIZE, 0);
        self.swap_slots.len() - 1
    }

    /// Drops one reference to a slot, marking it reusable at zero. The slot's
    /// bytes stay on the device — freed swap is never cleared, which is
    /// exactly why the paper's `mlock` discipline keeps keys from ever
    /// reaching it.
    fn unref_swap_slot(&mut self, slot: usize) {
        if let Some(s) = self.swap_slots[slot].as_mut() {
            s.refs = s.refs.saturating_sub(1);
            if s.refs == 0 {
                self.swap_slots[slot] = None;
            }
        }
    }

    /// Simulates memory pressure: evicts up to `max_pages` unlocked anonymous
    /// pages to the swap device, returning how many were written. Eviction is
    /// real: every mapping of the victim frame becomes a swapped PTE naming
    /// the slot, and the frame returns to the free lists (`zero_on_free`
    /// applies to the *frame* — the swap copy persists, which is why
    /// kernel-level zeroing alone does not close this channel). `mlock`ed
    /// pages are skipped — the protection the paper's solutions rely on.
    ///
    /// Each page written is one `SwapOut` fault operation charged to the
    /// first mapping process; on an injected failure the error propagates
    /// with already-evicted pages staying evicted (partial progress, as with
    /// a mid-run I/O error).
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::OutOfMemory`] (or [`SimError::NoSuchProcess`]
    /// after a kill) when the installed [`FaultPlan`] targets a `SwapOut`
    /// operation.
    pub fn swap_out_pressure(&mut self, max_pages: usize) -> SimResult<usize> {
        let mut written = 0usize;
        for i in 0..self.frames.len() {
            if written >= max_pages {
                break;
            }
            if self.frames[i].state != FrameState::Anon
                || self.frames[i].locked
                || self.frames[i].mappings.is_empty()
            {
                continue;
            }
            let f = FrameId(i);
            let owner = self.frames[i].mappings[0].0;
            self.fault_check(FaultOp::SwapOut, Some(owner))?;
            let slot = self.alloc_swap_slot();
            let base = f.base();
            let crypt_seed = if self.config.swap_crypto {
                // Provos-style swap encryption, modeled as a keyed stream
                // cipher: the device only ever sees ciphertext. The key mixes
                // the frame id with the event counter so no two writes share
                // a keystream (a pure function of the frame id was a
                // two-time pad: swapping the same frame before and after a
                // key install XORed to the plaintext diff).
                Some(swap_slot_seed(f, self.stats.swap_writes))
            } else {
                None
            };
            let mut page = self.phys[base..base + PAGE_SIZE].to_vec();
            if let Some(seed) = crypt_seed {
                swap_keystream_xor(seed, &mut page);
            }
            self.swap[slot * PAGE_SIZE..(slot + 1) * PAGE_SIZE].copy_from_slice(&page);
            let mappings = self.frames[i].mappings.clone();
            let mut refs = 0u32;
            for (pid, vpn) in mappings {
                if let Some(proc) = self.procs.get_mut(&pid) {
                    if let Some(pte) = proc.page_table.remove(&vpn) {
                        proc.swapped.insert(
                            vpn,
                            crate::process::SwappedPte {
                                slot,
                                cow: pte.cow,
                                readonly: pte.readonly,
                            },
                        );
                        refs += 1;
                    }
                }
            }
            self.swap_slots[slot] = Some(SwapSlot {
                refs: refs.max(1),
                crypt_seed,
            });
            self.free_frame(f);
            self.stats.swap_writes += 1;
            written += 1;
        }
        Ok(written)
    }

    /// Services a major fault: brings the swapped page `vpn` of `pid` back
    /// into a fresh frame, decrypting when the slot was written under swap
    /// crypto. Sharing ends here — each faulting mapping gets a private copy
    /// (a simplification of real swap-cache sharing; the slot stays live
    /// until every reference has faulted in or exited).
    ///
    /// One `SwapIn` fault operation, plus the nested `FrameAlloc` for the
    /// receiving frame (as with heap growth). On failure the page stays
    /// swapped — the fault can be retried.
    fn swap_in(&mut self, pid: Pid, vpn: u64) -> SimResult<FrameId> {
        self.fault_check(FaultOp::SwapIn, Some(pid))?;
        let swapped = *self
            .proc(pid)?
            .swapped
            .get(&vpn)
            .ok_or(SimError::BadAddress(VAddr(vpn * PAGE_SIZE as u64)))?;
        let frame = self.alloc_frame(FrameState::Anon)?;
        let slot = swapped.slot;
        let mut page = self.swap[slot * PAGE_SIZE..(slot + 1) * PAGE_SIZE].to_vec();
        if let Some(seed) = self.swap_slots[slot].as_ref().and_then(|s| s.crypt_seed) {
            swap_keystream_xor(seed, &mut page);
        }
        self.phys[frame.base()..frame.base() + PAGE_SIZE].copy_from_slice(&page);
        self.touch_bytes(frame);
        let locked = {
            let proc = self.proc_mut(pid)?;
            proc.swapped.remove(&vpn);
            proc.page_table.insert(
                vpn,
                crate::process::Pte {
                    frame,
                    cow: false,
                    readonly: swapped.readonly,
                },
            );
            proc.locked_vpns.contains(&vpn)
        };
        self.frames[frame.0].mappings.push((pid, vpn));
        self.frames[frame.0].locked = locked;
        self.touch_state(frame);
        self.unref_swap_slot(slot);
        self.stats.swap_ins += 1;
        Ok(frame)
    }

    /// Touches every page covering `[addr, addr + len)`, faulting swapped
    /// pages back in — how a caller clears [`SimError::SwappedOut`] ahead of
    /// a `&self` read.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::BadAddress`] when a page is neither resident
    /// nor swapped, or with the swap-in failure modes.
    pub fn touch_pages(&mut self, pid: Pid, addr: VAddr, len: usize) -> SimResult<()> {
        let first = addr.vpn();
        let last = VAddr(addr.0 + len.max(1) as u64 - 1).vpn();
        for vpn in first..=last {
            let proc = self.proc(pid)?;
            if proc.page_table.contains_key(&vpn) {
                continue;
            }
            if proc.swapped.contains_key(&vpn) {
                self.swap_in(pid, vpn)?;
            } else {
                return Err(SimError::BadAddress(VAddr(vpn * PAGE_SIZE as u64)));
            }
        }
        Ok(())
    }

    /// Number of `pid`'s pages currently on the swap device.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchProcess`].
    pub fn swapped_pages(&self, pid: Pid) -> SimResult<usize> {
        Ok(self.proc(pid)?.swapped.len())
    }

    /// Contents of the swap device (attackable storage in the paper's threat
    /// model). Bounded by peak swap residency: slots are reused, and freed
    /// slots keep their stale bytes, as on a real partition.
    #[must_use]
    pub fn swap_bytes(&self) -> &[u8] {
        &self.swap
    }

    // ------------------------------------------------------------------
    // Same-page merging (KSM)
    // ------------------------------------------------------------------

    /// Kernel same-page merging: scans anonymous frames and remaps every
    /// duplicate onto the lowest-numbered frame with identical bytes,
    /// marking all surviving PTEs copy-on-write. Locked pages merge too —
    /// KSM is exactly as eager on mlocked memory, which is what lets the
    /// dedup timing side channel confirm guesses about mlock-protected key
    /// pages. Returns the number of duplicate frames retired.
    ///
    /// The next write to a merged page breaks the sharing through the usual
    /// COW machinery (`stats.cow_breaks` ticks) — the observable latency
    /// difference the dedup attacker measures.
    pub fn merge_identical_pages(&mut self) -> usize {
        let mut by_hash: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for i in 0..self.frames.len() {
            if self.frames[i].state != FrameState::Anon {
                continue;
            }
            let base = i * PAGE_SIZE;
            by_hash
                .entry(fnv1a(&self.phys[base..base + PAGE_SIZE]))
                .or_default()
                .push(i);
        }
        let mut merged = 0usize;
        for group in by_hash.into_values() {
            if group.len() < 2 {
                continue;
            }
            // Lowest frame id with each distinct content is canonical; hash
            // collisions are resolved by the byte comparison.
            let mut canonicals: Vec<usize> = Vec::new();
            for i in group {
                let target = canonicals.iter().copied().find(|&c| {
                    self.phys[c * PAGE_SIZE..(c + 1) * PAGE_SIZE]
                        == self.phys[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]
                });
                match target {
                    Some(c) => {
                        self.merge_frame_into(FrameId(i), FrameId(c));
                        merged += 1;
                    }
                    None => canonicals.push(i),
                }
            }
        }
        merged
    }

    /// Remaps every mapping of `dup` onto `canon`, marks all PTEs of both
    /// frames COW, and retires `dup` to the free lists.
    fn merge_frame_into(&mut self, dup: FrameId, canon: FrameId) {
        let canon_mappings = self.frames[canon.0].mappings.clone();
        for (pid, vpn) in canon_mappings {
            if let Some(proc) = self.procs.get_mut(&pid) {
                if let Some(pte) = proc.page_table.get_mut(&vpn) {
                    pte.cow = true;
                }
            }
        }
        let dup_mappings = self.frames[dup.0].mappings.clone();
        for &(pid, vpn) in &dup_mappings {
            if let Some(proc) = self.procs.get_mut(&pid) {
                if let Some(pte) = proc.page_table.get_mut(&vpn) {
                    pte.frame = canon;
                    pte.cow = true;
                }
            }
        }
        let dup_refs = self.frames[dup.0].refcount;
        let dup_locked = self.frames[dup.0].locked;
        {
            let fr = &mut self.frames[canon.0];
            fr.mappings.extend(dup_mappings);
            fr.refcount += dup_refs;
            fr.locked |= dup_locked;
        }
        self.touch_state(canon);
        // `free_frame` resets the dup's metadata; with `zero_on_free` unset
        // its (duplicate) bytes linger on the free list, as ever.
        self.free_frame(dup);
        self.stats.pages_merged += 1;
    }

    /// Produces a core-dump image of one process: the contents of every
    /// mapped page in ascending virtual order. This is the artifact of the
    /// Broadwell et al. crash-report problem the paper cites — a core file
    /// shipped off-machine carries whatever the process had in memory.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchProcess`].
    pub fn dump_process(&self, pid: Pid) -> SimResult<Vec<u8>> {
        let proc = self.proc(pid)?;
        let mut out = Vec::with_capacity(proc.page_table.len() * PAGE_SIZE);
        for pte in proc.page_table.values() {
            out.extend_from_slice(self.frame_bytes(pte.frame));
        }
        Ok(out)
    }

    /// Ages the machine: cycles `fraction` of the currently free frames
    /// through an allocate/free pass and returns them to the free lists in
    /// random order.
    ///
    /// A freshly booted simulator hands out frames in strict watermark order,
    /// which would cluster every allocation at the bottom of physical memory.
    /// A real machine that has been up for a while has its free lists
    /// scattered across all of RAM — which is why the paper's key copies
    /// (Figures 5a, 6a) appear spread over the whole 256 MB. Call this once
    /// after boot to reproduce that spread. The cycled pages are never
    /// written, so no scan artifacts are introduced.
    ///
    /// Returns the number of frames cycled.
    pub fn age_memory(&mut self, rng: &mut simrng::Rng64, fraction: f64) -> usize {
        let n = (self.free.available() as f64 * fraction.clamp(0.0, 1.0)) as usize;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            match self.alloc_frame(FrameState::Kernel) {
                Ok(f) => frames.push(f),
                Err(_) => break,
            }
        }
        rng.shuffle(&mut frames);
        let cycled = frames.len();
        for f in frames {
            self.free_frame(f);
        }
        cycled
    }

    /// Heap diagnostics: `(live_bytes, live_chunks, mapped_pages)`.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchProcess`].
    pub fn heap_usage(&self, pid: Pid) -> SimResult<(u64, usize, usize)> {
        let p = self.proc(pid)?;
        Ok((p.heap.live_bytes(), p.heap.live_chunks(), p.mapped_pages()))
    }

    /// Base virtual address of the process heap.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchProcess`].
    pub fn heap_base(&self, pid: Pid) -> SimResult<VAddr> {
        Ok(VAddr(self.proc(pid)?.heap.base()))
    }

    /// Parent of `pid` at fork time, if any.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchProcess`].
    pub fn parent_of(&self, pid: Pid) -> SimResult<Option<Pid>> {
        Ok(self.proc(pid)?.parent)
    }

    /// Name a file was created with.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::NoSuchFile`].
    pub fn file_name(&self, fid: FileId) -> SimResult<&str> {
        Ok(&self.vfs.get(fid).ok_or(SimError::NoSuchFile(fid))?.name)
    }

    /// Number of files on the simulated disk.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.vfs.len()
    }
}

/// Per-event swap-encryption key: mixes the frame id with the global swap
/// write counter so no two writes ever share a keystream.
fn swap_slot_seed(f: FrameId, event: u64) -> u64 {
    let seed = 0x5DEE_CE66_D1CE_5EED_u64
        ^ (f.0 as u64).wrapping_mul(0x9E37_79B9)
        ^ event.wrapping_mul(0x94D0_49BB_1331_11EB);
    if seed == 0 {
        // xorshift's one fixed point; any nonzero constant restores mixing.
        0x5DEE_CE66_D1CE_5EED
    } else {
        seed
    }
}

/// XORs `buf` with the xorshift64 keystream seeded by `seed`. Symmetric:
/// applying it twice with the same seed restores the input.
fn swap_keystream_xor(seed: u64, buf: &mut [u8]) {
    let mut key = seed;
    for b in buf {
        key ^= key << 13;
        key ^= key >> 7;
        key ^= key << 17;
        *b ^= key as u8;
    }
}

/// FNV-1a over one page: buckets candidate frames before the byte comparison
/// that actually decides a merge.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
