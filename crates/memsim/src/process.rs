//! Simulated processes: page tables, VMAs, and per-process heap state.

use crate::heap::Heap;
use crate::{FrameId, VAddr};
use core::fmt;
use std::collections::BTreeMap;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// Base virtual address of the process heap.
pub(crate) const HEAP_BASE: u64 = 0x1000_0000;
/// Base virtual address of page-aligned special regions
/// (`posix_memalign`-style allocations).
pub(crate) const SPECIAL_BASE: u64 = 0x7000_0000;

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Pte {
    pub frame: FrameId,
    /// Copy-on-write: shared with another address space; a write must
    /// duplicate the frame first (unless we hold the last reference).
    pub cow: bool,
    /// Write-protected (`mprotect(PROT_READ)`): writes fault instead of
    /// landing — the enforcement half of `BN_FLG_STATIC_DATA`.
    pub readonly: bool,
}

/// A page that has been evicted to the swap device: which slot holds its
/// bytes, plus the PTE flags to restore when it faults back in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SwappedPte {
    /// Swap-device slot index (one slot = one page).
    pub slot: usize,
    /// The `cow` flag the resident PTE carried at eviction time.
    pub cow: bool,
    /// The `readonly` flag the resident PTE carried at eviction time.
    pub readonly: bool,
}

/// The kind of VMA a page belongs to; used for bookkeeping and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VmaKind {
    Heap,
    Special,
}

/// A simulated process.
#[derive(Debug, Clone)]
pub(crate) struct Process {
    pub parent: Option<Pid>,
    pub page_table: BTreeMap<u64, Pte>,
    /// VMA kind per virtual page number.
    pub vma_kind: BTreeMap<u64, VmaKind>,
    pub heap: Heap,
    /// Next free special-region address (bump allocated, page granular).
    pub next_special: u64,
    /// Virtual page numbers locked in memory (mlock).
    pub locked_vpns: std::collections::BTreeSet<u64>,
    /// Pages evicted to swap: vpn → slot + saved PTE flags. Disjoint from
    /// `page_table` — a page is resident or swapped, never both.
    pub swapped: BTreeMap<u64, SwappedPte>,
}

impl Process {
    pub(crate) fn new(parent: Option<Pid>) -> Self {
        Self {
            parent,
            page_table: BTreeMap::new(),
            vma_kind: BTreeMap::new(),
            heap: Heap::new(HEAP_BASE),
            next_special: SPECIAL_BASE,
            locked_vpns: std::collections::BTreeSet::new(),
            swapped: BTreeMap::new(),
        }
    }

    /// Looks up the PTE covering `addr`.
    pub(crate) fn pte(&self, addr: VAddr) -> Option<Pte> {
        self.page_table.get(&addr.vpn()).copied()
    }

    /// Number of mapped pages.
    pub(crate) fn mapped_pages(&self) -> usize {
        self.page_table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_empty() {
        let p = Process::new(None);
        assert_eq!(p.mapped_pages(), 0);
        assert!(p.pte(VAddr(HEAP_BASE)).is_none());
        assert_eq!(p.heap.base(), HEAP_BASE);
        assert_eq!(p.next_special, SPECIAL_BASE);
    }

    #[test]
    fn pte_lookup_by_page() {
        let mut p = Process::new(None);
        p.page_table.insert(
            VAddr(HEAP_BASE).vpn(),
            Pte {
                frame: FrameId(7),
                cow: false,
                readonly: false,
            },
        );
        // Any address within the page resolves to the same PTE.
        assert_eq!(p.pte(VAddr(HEAP_BASE + 123)).unwrap().frame, FrameId(7));
        assert!(p.pte(VAddr(HEAP_BASE + crate::PAGE_SIZE as u64)).is_none());
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid(42).to_string(), "pid 42");
    }
}
