//! A `malloc`-style first-fit heap for simulated processes.
//!
//! Chunk *metadata* lives host-side for simplicity; chunk *contents* live in
//! simulated physical memory. The behaviour the paper cares about is
//! preserved exactly: `free` does not clear the chunk's bytes, a later
//! allocation may recycle them, and (optionally) fully-free trailing pages
//! are trimmed back to the kernel with their contents intact.

use crate::VAddr;
use std::collections::BTreeMap;

/// Allocation granularity in bytes.
pub(crate) const CHUNK_ALIGN: u64 = 16;

/// One heap chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Chunk {
    size: u64,
    free: bool,
}

/// Per-process heap state. Page mapping is managed by the kernel; this type
/// only tracks chunk geometry inside `[base, brk)`.
#[derive(Debug, Clone)]
pub(crate) struct Heap {
    base: u64,
    brk: u64,
    chunks: BTreeMap<u64, Chunk>,
}

/// Outcome of a free, telling the kernel whether trailing pages can be
/// trimmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FreeOutcome {
    /// New break if the heap tail became releasable, i.e. pages in
    /// `[new_brk_page_aligned, old_brk)` can be unmapped.
    pub trim_to: Option<u64>,
}

impl Heap {
    pub(crate) fn new(base: u64) -> Self {
        Self {
            base,
            brk: base,
            chunks: BTreeMap::new(),
        }
    }

    pub(crate) fn base(&self) -> u64 {
        self.base
    }

    pub(crate) fn brk(&self) -> u64 {
        self.brk
    }

    /// Finds space for `size` bytes. Returns the chunk address plus how many
    /// bytes of *new* break growth the kernel must map (0 when recycling).
    pub(crate) fn alloc(&mut self, size: u64) -> (VAddr, u64) {
        let size = size.max(1).next_multiple_of(CHUNK_ALIGN);
        // First fit over free chunks — recycled memory keeps its old bytes.
        let candidate = self
            .chunks
            .iter()
            .find(|(_, c)| c.free && c.size >= size)
            .map(|(&a, &c)| (a, c));
        if let Some((addr, chunk)) = candidate {
            if chunk.size > size {
                // Split: tail remains free.
                self.chunks.insert(
                    addr + size,
                    Chunk {
                        size: chunk.size - size,
                        free: true,
                    },
                );
            }
            self.chunks.insert(addr, Chunk { size, free: false });
            return (VAddr(addr), 0);
        }
        // Extend the break.
        let addr = self.brk;
        let new_brk = addr + size;
        let old_mapped_end = self.brk.next_multiple_of(crate::PAGE_SIZE as u64);
        let new_mapped_end = new_brk.next_multiple_of(crate::PAGE_SIZE as u64);
        self.brk = new_brk;
        self.chunks.insert(addr, Chunk { size, free: false });
        (VAddr(addr), new_mapped_end - old_mapped_end)
    }

    /// Size of the live chunk starting at `addr`, if any.
    pub(crate) fn chunk_size(&self, addr: VAddr) -> Option<u64> {
        self.chunks
            .get(&addr.0)
            .filter(|c| !c.free)
            .map(|c| c.size)
    }

    /// Marks the chunk at `addr` free and coalesces neighbours.
    ///
    /// Returns `Err(())` when `addr` is not the start of a live chunk.
    pub(crate) fn free(&mut self, addr: VAddr, trim: bool) -> Result<FreeOutcome, ()> {
        let addr = addr.0;
        match self.chunks.get_mut(&addr) {
            Some(c) if !c.free => c.free = true,
            _ => return Err(()),
        }
        self.coalesce_around(addr);

        if !trim {
            return Ok(FreeOutcome { trim_to: None });
        }
        // If the topmost chunk is free and spans at least one whole page
        // boundary, shrink the break (glibc M_TRIM_THRESHOLD behaviour, with
        // threshold = 1 page so the effect is visible at simulation scale).
        if let Some((&top_addr, top)) = self.chunks.iter().next_back() {
            if top.free && top_addr + top.size == self.brk {
                let keep_until = top_addr.next_multiple_of(crate::PAGE_SIZE as u64);
                let old_mapped_end = self.brk.next_multiple_of(crate::PAGE_SIZE as u64);
                if keep_until < old_mapped_end {
                    self.chunks.remove(&top_addr);
                    self.brk = top_addr;
                    if self.brk > self.base {
                        // Retain any sub-page remainder as a free chunk.
                        // (top_addr may be mid-page; pages below keep_until
                        // stay mapped.)
                    }
                    return Ok(FreeOutcome {
                        trim_to: Some(keep_until),
                    });
                }
            }
        }
        Ok(FreeOutcome { trim_to: None })
    }

    fn coalesce_around(&mut self, addr: u64) {
        // Merge with the next chunk when both free.
        let cur = self.chunks[&addr];
        if let Some((&next_addr, &next)) = self.chunks.range(addr + 1..).next() {
            if next.free && addr + cur.size == next_addr {
                self.chunks.remove(&next_addr);
                self.chunks.insert(
                    addr,
                    Chunk {
                        size: cur.size + next.size,
                        free: true,
                    },
                );
            }
        }
        // Merge with the previous chunk when both free.
        if let Some((&prev_addr, &prev)) = self.chunks.range(..addr).next_back() {
            if prev.free && prev_addr + prev.size == addr {
                let cur = self.chunks.remove(&addr).expect("chunk exists");
                self.chunks.insert(
                    prev_addr,
                    Chunk {
                        size: prev.size + cur.size,
                        free: true,
                    },
                );
            }
        }
    }

    /// Removes the chunk at `addr` when it is the topmost live chunk created
    /// by break growth, restoring the previous break exactly. Used to roll
    /// back an allocation whose page mapping failed partway — the grow path
    /// only runs when no free chunk fits, so the new chunk is always topmost.
    pub(crate) fn retract(&mut self, addr: VAddr) -> bool {
        match self.chunks.get(&addr.0) {
            Some(c) if !c.free && addr.0 + c.size == self.brk => {}
            _ => return false,
        }
        self.chunks.remove(&addr.0);
        self.brk = addr.0;
        true
    }

    /// Total bytes in live (non-free) chunks.
    pub(crate) fn live_bytes(&self) -> u64 {
        self.chunks
            .values()
            .filter(|c| !c.free)
            .map(|c| c.size)
            .sum()
    }

    /// Number of live chunks.
    pub(crate) fn live_chunks(&self) -> usize {
        self.chunks.values().filter(|c| !c.free).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn alloc_grows_break_and_reports_new_pages() {
        let mut h = Heap::new(0x1000_0000);
        let (a, grow) = h.alloc(100);
        assert_eq!(a.0, 0x1000_0000);
        assert_eq!(grow, PAGE_SIZE as u64); // first allocation maps one page
        let (b, grow2) = h.alloc(100);
        assert!(b.0 > a.0);
        assert_eq!(grow2, 0); // still inside the first page
    }

    #[test]
    fn sizes_round_up_to_alignment() {
        let mut h = Heap::new(0);
        let (a, _) = h.alloc(1);
        let (b, _) = h.alloc(1);
        assert_eq!(b.0 - a.0, CHUNK_ALIGN);
    }

    #[test]
    fn free_then_alloc_recycles_same_address() {
        let mut h = Heap::new(0x1000);
        let (a, _) = h.alloc(64);
        let (_b, _) = h.alloc(64); // prevents trimming a from the top
        h.free(a, false).unwrap();
        let (c, grow) = h.alloc(64);
        assert_eq!(c, a, "first-fit must recycle the freed chunk");
        assert_eq!(grow, 0);
    }

    #[test]
    fn split_leaves_free_tail() {
        let mut h = Heap::new(0);
        let (a, _) = h.alloc(256);
        let (_guard, _) = h.alloc(16);
        h.free(a, false).unwrap();
        let (b, _) = h.alloc(64);
        assert_eq!(b, a);
        // Remaining 192 bytes should be allocatable without growing.
        let (c, grow) = h.alloc(192);
        assert_eq!(c.0, a.0 + 64);
        assert_eq!(grow, 0);
    }

    #[test]
    fn double_free_is_error() {
        let mut h = Heap::new(0);
        let (a, _) = h.alloc(32);
        assert!(h.free(a, false).is_ok());
        assert!(h.free(a, false).is_err());
        assert!(h.free(VAddr(0xdead), false).is_err());
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut h = Heap::new(0);
        let (a, _) = h.alloc(32);
        let (b, _) = h.alloc(32);
        let (c, _) = h.alloc(32);
        let (_guard, _) = h.alloc(16);
        h.free(a, false).unwrap();
        h.free(c, false).unwrap();
        h.free(b, false).unwrap(); // merges a+b+c into one 96-byte chunk
        let (d, grow) = h.alloc(96);
        assert_eq!(d, a);
        assert_eq!(grow, 0);
    }

    #[test]
    fn trim_releases_trailing_pages() {
        let mut h = Heap::new(0x2000_0000);
        let (big, _) = h.alloc(3 * PAGE_SIZE as u64);
        let out = h.free(big, true).unwrap();
        // Entire tail was free: everything above the (page-aligned) base can go.
        assert_eq!(out.trim_to, Some(0x2000_0000));
        assert_eq!(h.brk(), 0x2000_0000);
    }

    #[test]
    fn trim_disabled_keeps_pages() {
        let mut h = Heap::new(0x2000_0000);
        let (big, _) = h.alloc(3 * PAGE_SIZE as u64);
        let out = h.free(big, false).unwrap();
        assert_eq!(out.trim_to, None);
    }

    #[test]
    fn trim_respects_live_data_below() {
        let mut h = Heap::new(0x1000);
        let (_keep, _) = h.alloc(64);
        let (big, _) = h.alloc(2 * PAGE_SIZE as u64);
        let out = h.free(big, true).unwrap();
        let trim_to = out.trim_to.expect("tail should trim");
        // The page holding the live 64-byte chunk must stay mapped.
        assert!(trim_to >= 0x1000 + 64);
        assert_eq!(trim_to % PAGE_SIZE as u64, 0);
    }

    #[test]
    fn live_accounting() {
        let mut h = Heap::new(0);
        assert_eq!(h.live_bytes(), 0);
        let (a, _) = h.alloc(32);
        let (_b, _) = h.alloc(32);
        assert_eq!(h.live_bytes(), 64);
        assert_eq!(h.live_chunks(), 2);
        h.free(a, false).unwrap();
        assert_eq!(h.live_bytes(), 32);
        assert_eq!(h.live_chunks(), 1);
    }

    #[test]
    fn retract_undoes_break_growth_exactly() {
        let mut h = Heap::new(0x1000);
        let (_keep, _) = h.alloc(64);
        let brk_before = h.brk();
        let chunks_before = h.live_chunks();
        let (grown, grow) = h.alloc(2 * PAGE_SIZE as u64);
        assert!(grow > 0, "second alloc must grow the break");
        assert!(h.retract(grown), "topmost grown chunk retracts");
        assert_eq!(h.brk(), brk_before);
        assert_eq!(h.live_chunks(), chunks_before);
        // Retract only applies to the topmost live chunk.
        let (a, _) = h.alloc(32);
        let (_top, _) = h.alloc(32);
        assert!(!h.retract(a), "non-topmost chunk must not retract");
        assert!(!h.retract(VAddr(0xdead)));
    }

    #[test]
    fn chunk_size_reports_live_only() {
        let mut h = Heap::new(0);
        let (a, _) = h.alloc(40);
        assert_eq!(h.chunk_size(a), Some(48)); // rounded to 16
        h.free(a, false).unwrap();
        assert_eq!(h.chunk_size(a), None);
    }
}
