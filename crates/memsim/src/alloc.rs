//! The physical page allocator: hot/cold free lists over a high-watermark
//! pool, mirroring the per-CPU page lists of the 2.6 kernel's
//! `free_hot_cold_page` path (the function the paper patches).

use crate::FrameId;

/// Free-frame bookkeeping.
///
/// Frames are handed out in this order: hot list (LIFO — most recently freed
/// first), then the cold stack (also most-recently-spilled first, matching
/// the buddy allocator's head-insertion of freed pages), then never-yet-used
/// frames from the watermark. The overall most-recently-freed-first order is
/// deliberately faithful: it is what makes freshly freed, secret-bearing
/// pages the *first* thing a subsequent kernel allocation (such as an ext2
/// directory block) receives.
#[derive(Debug, Clone)]
pub(crate) struct FreeLists {
    hot: Vec<FrameId>,
    cold: Vec<FrameId>,
    hot_max: usize,
    /// First frame that has never been allocated; all frames at or above this
    /// index are pristine zeros.
    watermark: usize,
    total_frames: usize,
}

impl FreeLists {
    pub(crate) fn new(total_frames: usize, hot_max: usize) -> Self {
        Self {
            hot: Vec::new(),
            cold: Vec::new(),
            hot_max: hot_max.max(1),
            watermark: 0,
            total_frames,
        }
    }

    /// Takes a frame, preferring recently freed ones.
    pub(crate) fn alloc(&mut self) -> Option<FrameId> {
        if let Some(f) = self.hot.pop() {
            return Some(f);
        }
        if let Some(f) = self.cold.pop() {
            return Some(f);
        }
        if self.watermark < self.total_frames {
            let f = FrameId(self.watermark);
            self.watermark += 1;
            return Some(f);
        }
        None
    }

    /// Returns a frame to the hot list, spilling the oldest hot frame onto
    /// the cold stack when the hot list is full.
    pub(crate) fn free(&mut self, frame: FrameId) {
        self.hot.push(frame);
        if self.hot.len() > self.hot_max {
            let spilled = self.hot.remove(0);
            self.cold.push(spilled);
        }
    }

    /// Number of frames currently available without OOM.
    pub(crate) fn available(&self) -> usize {
        self.hot.len() + self.cold.len() + (self.total_frames - self.watermark)
    }

    /// Frames sitting on a free list (excludes never-used frames).
    pub(crate) fn listed(&self) -> usize {
        self.hot.len() + self.cold.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_from_empty_lists_uses_watermark_in_order() {
        let mut fl = FreeLists::new(4, 2);
        assert_eq!(fl.alloc(), Some(FrameId(0)));
        assert_eq!(fl.alloc(), Some(FrameId(1)));
        assert_eq!(fl.available(), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fl = FreeLists::new(2, 2);
        assert!(fl.alloc().is_some());
        assert!(fl.alloc().is_some());
        assert_eq!(fl.alloc(), None);
        assert_eq!(fl.available(), 0);
    }

    #[test]
    fn freed_frame_is_reused_lifo() {
        let mut fl = FreeLists::new(8, 4);
        let a = fl.alloc().unwrap();
        let b = fl.alloc().unwrap();
        fl.free(a);
        fl.free(b);
        // Most recently freed first — the hot-list behaviour the ext2 attack
        // exploits.
        assert_eq!(fl.alloc(), Some(b));
        assert_eq!(fl.alloc(), Some(a));
    }

    #[test]
    fn reuse_order_is_most_recently_freed_first_across_spill() {
        let mut fl = FreeLists::new(16, 2);
        let frames: Vec<FrameId> = (0..4).map(|_| fl.alloc().unwrap()).collect();
        for &f in &frames {
            fl.free(f);
        }
        // hot holds the last 2 freed (frames[2], frames[3]); the earlier
        // frees spilled to the cold stack with the most recent spill on top.
        assert_eq!(fl.alloc(), Some(frames[3]));
        assert_eq!(fl.alloc(), Some(frames[2]));
        assert_eq!(fl.alloc(), Some(frames[1]));
        assert_eq!(fl.alloc(), Some(frames[0]));
    }

    #[test]
    fn listed_counts_only_freed_frames() {
        let mut fl = FreeLists::new(8, 4);
        assert_eq!(fl.listed(), 0);
        let a = fl.alloc().unwrap();
        fl.free(a);
        assert_eq!(fl.listed(), 1);
    }
}
