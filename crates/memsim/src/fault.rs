//! Deterministic fault injection for the simulated kernel.
//!
//! Real kernels fail rarely and unreproducibly; this simulator can fail *any*
//! fallible operation at *exactly* the chosen moment, run to run, thread to
//! thread. A [`FaultPlan`] installed on a [`crate::Kernel`] decides, for each
//! fallible operation the kernel executes, whether that operation is forced
//! to fail — and the decision is a pure function of the plan and the kernel's
//! **operation counter**, so a plan replays bit-identically from
//! `(seed, op_index)` no matter how the surrounding experiment is scheduled.
//!
//! Three targeting modes compose inside one plan:
//!
//! * **per-class**: fail the `k`-th occurrence of one [`FaultOp`] class
//!   ("the third `fork` fails");
//! * **by-index**: fail (or kill the acting process at) a global operation
//!   index — the mode the `faultsweep` harness uses to enumerate *every*
//!   fallible step of a workload;
//! * **seeded**: fail roughly one in `denom` operations, chosen by hashing
//!   `(seed, op_index)` — background fault pressure that is still exactly
//!   replayable.
//!
//! The operation counter advances identically whether or not any plan is
//! installed, so a probe run with an empty plan discovers the index space a
//! targeted plan can then address.

use core::fmt;

/// The classes of fallible kernel operation a plan can target.
///
/// Every class maps to one public entry point of [`crate::Kernel`]; the
/// `FrameAlloc` class additionally fires inside every internal page-frame
/// allocation (heap growth, COW duplication, page-cache fill, special-region
/// pages), which is what makes an index sweep exhaustive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultOp {
    /// Any page-frame allocation (`alloc_frame`): heap growth, COW breaks,
    /// page-cache fills, kernel pages, special-region pages.
    FrameAlloc,
    /// A user heap allocation (`heap_alloc`).
    HeapAlloc,
    /// A slab allocation (`kmalloc`).
    Kmalloc,
    /// A special-region allocation (`alloc_special_region`).
    SpecialAlloc,
    /// An `mlock` call (refused as if `RLIMIT_MEMLOCK` were exceeded).
    Mlock,
    /// A `fork` call (refused as if the process table were full).
    Fork,
    /// One page eviction inside `swap_out_pressure` (refused as if the swap
    /// device returned an I/O error before the page table was touched).
    SwapOut,
    /// A major fault bringing a swapped page back (`swap_in`): refused as if
    /// the swap read failed, before any frame was allocated.
    SwapIn,
    /// One dirty page-cache page flushed to its backing file (`writeback`).
    Writeback,
}

impl FaultOp {
    /// Every class, in counter order. New classes are appended so the
    /// per-class indices below stay stable across releases.
    pub const ALL: [Self; 9] = [
        Self::FrameAlloc,
        Self::HeapAlloc,
        Self::Kmalloc,
        Self::SpecialAlloc,
        Self::Mlock,
        Self::Fork,
        Self::SwapOut,
        Self::SwapIn,
        Self::Writeback,
    ];

    /// Stable index used for per-class occurrence counters.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::FrameAlloc => 0,
            Self::HeapAlloc => 1,
            Self::Kmalloc => 2,
            Self::SpecialAlloc => 3,
            Self::Mlock => 4,
            Self::Fork => 5,
            Self::SwapOut => 6,
            Self::SwapIn => 7,
            Self::Writeback => 8,
        }
    }

    /// Short label used in sweep output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::FrameAlloc => "frame_alloc",
            Self::HeapAlloc => "heap_alloc",
            Self::Kmalloc => "kmalloc",
            Self::SpecialAlloc => "special_alloc",
            Self::Mlock => "mlock",
            Self::Fork => "fork",
            Self::SwapOut => "swap_out",
            Self::SwapIn => "swap_in",
            Self::Writeback => "writeback",
        }
    }
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the plan decided about one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Let the operation proceed.
    Allow,
    /// Force the operation to fail with its class's documented error.
    Fail,
    /// Kill the acting process (when one is involved), then fail the
    /// operation as [`crate::SimError::NoSuchProcess`].
    Kill,
}

/// A deterministic fault schedule. Install on a kernel with
/// [`crate::Kernel::install_fault_plan`].
///
/// # Examples
///
/// ```
/// use memsim::{FaultOp, FaultPlan, Kernel, MachineConfig, SimError};
///
/// let mut k = Kernel::new(MachineConfig::small());
/// let pid = k.spawn();
/// // The second fork in the machine's lifetime fails.
/// k.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::Fork, 2));
/// assert!(k.fork(pid).is_ok());
/// assert_eq!(k.fork(pid), Err(SimError::OutOfMemory));
/// assert!(k.fork(pid).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(class, k)`: the `k`-th occurrence (1-based) of `class` fails.
    nth: Vec<(FaultOp, u64)>,
    /// Global operation indices (0-based) that fail outright.
    fail_at: Vec<u64>,
    /// Global operation indices at which the acting process is killed.
    kill_at: Vec<u64>,
    /// Seeded background faults: fail when `mix(seed, op_index) % denom == 0`.
    seeded: Option<(u64, u64)>,
}

impl FaultPlan {
    /// An empty plan: nothing fails.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fails the `k`-th occurrence (1-based) of `op`.
    #[must_use]
    pub fn fail_nth(mut self, op: FaultOp, k: u64) -> Self {
        self.nth.push((op, k));
        self
    }

    /// Fails the operation with global index `op_index` (0-based), whatever
    /// its class — the exhaustive-sweep mode.
    #[must_use]
    pub fn fail_at_index(mut self, op_index: u64) -> Self {
        self.fail_at.push(op_index);
        self
    }

    /// Kills the process acting in the operation at global index `op_index`.
    /// Operations without an acting process (e.g. `kmalloc`) fail instead.
    #[must_use]
    pub fn kill_at_index(mut self, op_index: u64) -> Self {
        self.kill_at.push(op_index);
        self
    }

    /// Second-order failure: the operations at global indices `first` and
    /// `second` both fail. The second index targets whatever operation the
    /// *recovery path* of the first failure executes — enumerating `(j, k)`
    /// pairs proves the rollback code is itself crash-consistent.
    #[must_use]
    pub fn fail_at_indices(self, first: u64, second: u64) -> Self {
        self.fail_at_index(first).fail_at_index(second)
    }

    /// Second-order fail-then-kill: the operation at `fail_index` fails, and
    /// the acting process is killed at `kill_index` — typically mid-recovery
    /// from the first failure.
    #[must_use]
    pub fn fail_then_kill(self, fail_index: u64, kill_index: u64) -> Self {
        self.fail_at_index(fail_index).kill_at_index(kill_index)
    }

    /// Adds seeded background faults: roughly one in `denom` operations
    /// fails, selected by hashing `(seed, op_index)`. `denom == 0` disables.
    #[must_use]
    pub fn seeded(mut self, seed: u64, denom: u64) -> Self {
        self.seeded = if denom == 0 { None } else { Some((seed, denom)) };
        self
    }

    /// Whether this plan can ever inject a fault.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nth.is_empty()
            && self.fail_at.is_empty()
            && self.kill_at.is_empty()
            && self.seeded.is_none()
    }

    /// The decision for the operation of class `op` with per-class occurrence
    /// number `occurrence` (1-based) and global index `op_index` (0-based).
    ///
    /// Pure: depends only on the plan and the two counters, which is what
    /// makes every fault replayable from `(seed, op_index)`.
    #[must_use]
    pub fn decide(&self, op: FaultOp, occurrence: u64, op_index: u64) -> FaultDecision {
        if self.kill_at.contains(&op_index) {
            return FaultDecision::Kill;
        }
        if self.fail_at.contains(&op_index) || self.nth.contains(&(op, occurrence)) {
            return FaultDecision::Fail;
        }
        if let Some((seed, denom)) = self.seeded {
            if mix(seed, op_index) % denom == 0 {
                return FaultDecision::Fail;
            }
        }
        FaultDecision::Allow
    }
}

/// SplitMix64-style finalizer over `(seed, op_index)` — the same replayable
/// hash discipline the experiment harness uses for per-cell seeds.
fn mix(seed: u64, op_index: u64) -> u64 {
    let mut z = seed ^ op_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_allows_everything() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        for op in FaultOp::ALL {
            assert_eq!(plan.decide(op, 1, 0), FaultDecision::Allow);
        }
    }

    #[test]
    fn nth_occurrence_targets_one_class() {
        let plan = FaultPlan::new().fail_nth(FaultOp::Fork, 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.decide(FaultOp::Fork, 2, 10), FaultDecision::Allow);
        assert_eq!(plan.decide(FaultOp::Fork, 3, 11), FaultDecision::Fail);
        assert_eq!(plan.decide(FaultOp::HeapAlloc, 3, 11), FaultDecision::Allow);
    }

    #[test]
    fn index_modes_ignore_class() {
        let plan = FaultPlan::new().fail_at_index(7).kill_at_index(9);
        for op in FaultOp::ALL {
            assert_eq!(plan.decide(op, 1, 7), FaultDecision::Fail);
            assert_eq!(plan.decide(op, 1, 9), FaultDecision::Kill);
            assert_eq!(plan.decide(op, 1, 8), FaultDecision::Allow);
        }
    }

    #[test]
    fn seeded_mode_is_replayable_and_roughly_calibrated() {
        let plan = FaultPlan::new().seeded(42, 16);
        let hits: Vec<bool> = (0..1600)
            .map(|i| plan.decide(FaultOp::FrameAlloc, i + 1, i) == FaultDecision::Fail)
            .collect();
        let again: Vec<bool> = (0..1600)
            .map(|i| plan.decide(FaultOp::FrameAlloc, i + 1, i) == FaultDecision::Fail)
            .collect();
        assert_eq!(hits, again, "same (seed, op_index) -> same decision");
        let count = hits.iter().filter(|h| **h).count();
        assert!((50..200).contains(&count), "≈100 of 1600 expected, got {count}");
        // A different seed picks a different subset.
        let other = (0..1600)
            .map(|i| FaultPlan::new().seeded(43, 16).decide(FaultOp::FrameAlloc, i + 1, i))
            .filter(|d| *d == FaultDecision::Fail)
            .count();
        assert!(other > 0);
        assert_ne!(
            hits.iter().filter(|h| **h).count(),
            0,
            "seed 42 must hit at least once"
        );
        let _ = other;
    }

    #[test]
    fn second_order_pair_fails_both_indices() {
        let plan = FaultPlan::new().fail_at_indices(3, 9);
        assert_eq!(plan.decide(FaultOp::HeapAlloc, 1, 3), FaultDecision::Fail);
        assert_eq!(plan.decide(FaultOp::FrameAlloc, 1, 9), FaultDecision::Fail);
        assert_eq!(plan.decide(FaultOp::FrameAlloc, 1, 4), FaultDecision::Allow);
        // The pair composes with further single-index entries.
        let plan = plan.fail_at_index(12);
        assert_eq!(plan.decide(FaultOp::Mlock, 1, 12), FaultDecision::Fail);
    }

    #[test]
    fn fail_then_kill_pair_orders_fail_before_kill() {
        let plan = FaultPlan::new().fail_then_kill(5, 11);
        assert_eq!(plan.decide(FaultOp::SpecialAlloc, 1, 5), FaultDecision::Fail);
        assert_eq!(plan.decide(FaultOp::FrameAlloc, 2, 11), FaultDecision::Kill);
        assert_eq!(plan.decide(FaultOp::FrameAlloc, 1, 6), FaultDecision::Allow);
        // Same index in both roles: kill still wins.
        let same = FaultPlan::new().fail_then_kill(7, 7);
        assert_eq!(same.decide(FaultOp::Fork, 1, 7), FaultDecision::Kill);
    }

    #[test]
    fn kill_takes_precedence_over_fail() {
        let plan = FaultPlan::new().fail_at_index(5).kill_at_index(5);
        assert_eq!(plan.decide(FaultOp::HeapAlloc, 1, 5), FaultDecision::Kill);
    }

    #[test]
    fn labels_and_indices_are_stable() {
        for (i, op) in FaultOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(!op.label().is_empty());
            assert_eq!(op.to_string(), op.label());
        }
    }
}
