//! A kmalloc-style slab allocator over kernel pages.
//!
//! Real kernels serve small allocations (tty buffers, skbs, dentries) from
//! slab caches: pages carved into fixed-size objects with per-class free
//! lists. Two data-lifetime properties matter for this reproduction:
//!
//! 1. `kfree` returns an object to its *slab free list*, not to the page
//!    allocator — so the paper's `zero_on_free` page patch **does not see
//!    it**. Stale secrets survive inside allocated slab pages until the
//!    whole page is reclaimed (`slab_shrink`).
//! 2. Slab reuse is LIFO per size class, so an attacker who can allocate
//!    objects of the right size (most infoleak CVEs) reads recent frees.
//!
//! This is a documented *gap* of the paper's kernel-level solution, measured
//! by `exploits::SlabProbe`.

use crate::FrameId;
use crate::PAGE_SIZE;

/// The kmalloc size classes, in bytes.
pub const SLAB_CLASSES: [usize; 7] = [32, 64, 128, 256, 512, 1024, 2048];

/// A handle to one kmalloc'd object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KObj {
    /// The slab page holding the object.
    pub(crate) frame: FrameId,
    /// Byte offset of the object within the page.
    pub(crate) offset: usize,
    /// Size-class index into [`SLAB_CLASSES`].
    pub(crate) class: usize,
}

impl KObj {
    /// The object's capacity in bytes (its size class).
    #[must_use]
    pub fn capacity(self) -> usize {
        SLAB_CLASSES[self.class]
    }
}

/// Per-class slab state.
#[derive(Debug, Clone, Default)]
struct SlabClass {
    /// Pages fully owned by this class.
    pages: Vec<FrameId>,
    /// Free objects, most recently freed last (LIFO reuse).
    free: Vec<KObj>,
    /// Live object count per page index (parallel to `pages`).
    live: Vec<usize>,
}

/// The slab allocator: bookkeeping only; object bytes live in the kernel's
/// physical memory and are never touched by alloc/free.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlabAllocator {
    classes: [SlabClass; 7],
}

/// Smallest class index fitting `size`, or `None` if too large.
pub(crate) fn class_for(size: usize) -> Option<usize> {
    SLAB_CLASSES.iter().position(|&c| c >= size)
}

impl SlabAllocator {
    /// Takes a free object if one exists (LIFO). `None` means the caller
    /// must grow the class with a fresh page via [`Self::add_page`].
    pub(crate) fn take(&mut self, class: usize) -> Option<KObj> {
        let c = &mut self.classes[class];
        let obj = c.free.pop()?;
        let idx = c.pages.iter().position(|&p| p == obj.frame).expect("page tracked");
        c.live[idx] += 1;
        Some(obj)
    }

    /// Registers a fresh page for `class` and carves it into free objects.
    pub(crate) fn add_page(&mut self, class: usize, frame: FrameId) {
        let size = SLAB_CLASSES[class];
        let c = &mut self.classes[class];
        c.pages.push(frame);
        c.live.push(0);
        let per_page = PAGE_SIZE / size;
        // Push in reverse so the first take() returns offset 0.
        for i in (0..per_page).rev() {
            c.free.push(KObj {
                frame,
                offset: i * size,
                class,
            });
        }
    }

    /// Returns an object to its class free list. The bytes are untouched.
    ///
    /// Returns `false` on a double free or foreign object.
    pub(crate) fn give_back(&mut self, obj: KObj) -> bool {
        let c = &mut self.classes[obj.class];
        let Some(idx) = c.pages.iter().position(|&p| p == obj.frame) else {
            return false;
        };
        if c.free.contains(&obj) || c.live[idx] == 0 {
            return false;
        }
        c.live[idx] -= 1;
        c.free.push(obj);
        true
    }

    /// Removes fully-free pages from every class, returning them so the
    /// kernel can release them through the page allocator (where the
    /// zeroing policy finally applies).
    pub(crate) fn reap_empty_pages(&mut self) -> Vec<FrameId> {
        let mut reaped = Vec::new();
        for c in &mut self.classes {
            let mut i = 0;
            while i < c.pages.len() {
                if c.live[i] == 0 {
                    let frame = c.pages.swap_remove(i);
                    c.live.swap_remove(i);
                    c.free.retain(|o| o.frame != frame);
                    reaped.push(frame);
                } else {
                    i += 1;
                }
            }
        }
        reaped
    }

    /// Total pages currently owned by slab caches.
    pub(crate) fn pages_owned(&self) -> usize {
        self.classes.iter().map(|c| c.pages.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_selection() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(32), Some(0));
        assert_eq!(class_for(33), Some(1));
        assert_eq!(class_for(2048), Some(6));
        assert_eq!(class_for(2049), None);
    }

    #[test]
    fn page_carving_and_lifo_reuse() {
        let mut s = SlabAllocator::default();
        assert!(s.take(1).is_none(), "empty class has nothing");
        s.add_page(1, FrameId(7));
        let per_page = PAGE_SIZE / 64;
        let a = s.take(1).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(a.capacity(), 64);
        let b = s.take(1).unwrap();
        assert_eq!(b.offset, 64);
        // LIFO: freeing b then a reuses a first.
        assert!(s.give_back(b));
        assert!(s.give_back(a));
        assert_eq!(s.take(1).unwrap(), a);
        assert_eq!(s.take(1).unwrap(), b);
        // Exhaust the page.
        for _ in 2..per_page {
            assert!(s.take(1).is_some());
        }
        assert!(s.take(1).is_none());
    }

    #[test]
    fn double_free_rejected() {
        let mut s = SlabAllocator::default();
        s.add_page(0, FrameId(1));
        let a = s.take(0).unwrap();
        assert!(s.give_back(a));
        assert!(!s.give_back(a), "double free");
        let foreign = KObj {
            frame: FrameId(99),
            offset: 0,
            class: 0,
        };
        assert!(!s.give_back(foreign), "foreign object");
    }

    #[test]
    fn reap_returns_only_empty_pages() {
        let mut s = SlabAllocator::default();
        s.add_page(2, FrameId(1));
        s.add_page(2, FrameId(2));
        assert_eq!(s.pages_owned(), 2);
        // Take one object from page... take order: first adds push in
        // reverse, so the top of the free list belongs to FrameId(2)? All
        // objects of page 2 were pushed after page 1's; LIFO pops page 2
        // objects first.
        let a = s.take(2).unwrap();
        assert_eq!(a.frame, FrameId(2));
        let reaped = s.reap_empty_pages();
        assert_eq!(reaped, vec![FrameId(1)], "page with a live object stays");
        assert_eq!(s.pages_owned(), 1);
        assert!(s.give_back(a));
        let reaped = s.reap_empty_pages();
        assert_eq!(reaped, vec![FrameId(2)]);
        assert_eq!(s.pages_owned(), 0);
    }
}
