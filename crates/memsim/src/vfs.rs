//! A minimal in-memory VFS whose reads populate the simulated page cache.
//!
//! The only file the experiments need is the PEM-encoded private key, but the
//! VFS is general: any file can be created, read (with or without the paper's
//! `O_NOCACHE` flag), and have its cache residency inspected.

use core::fmt;
use std::collections::HashMap;

/// Identifier of a simulated file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// File table: names and contents (the "disk").
#[derive(Debug, Clone, Default)]
pub(crate) struct Vfs {
    files: HashMap<FileId, FileEntry>,
    next_id: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct FileEntry {
    pub name: String,
    pub content: Vec<u8>,
    /// Mode-0600 files (key material at rest) are invisible to the
    /// unprivileged disk scan; a raw device image still contains them.
    pub private: bool,
}

impl Vfs {
    pub(crate) fn create(&mut self, name: &str, content: Vec<u8>) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(
            id,
            FileEntry {
                name: name.to_string(),
                content,
                private: false,
            },
        );
        id
    }

    pub(crate) fn get(&self, id: FileId) -> Option<&FileEntry> {
        self.files.get(&id)
    }

    pub(crate) fn get_mut(&mut self, id: FileId) -> Option<&mut FileEntry> {
        self.files.get_mut(&id)
    }

    /// File ids in creation order — the deterministic order disk images are
    /// assembled in.
    pub(crate) fn ids(&self) -> Vec<FileId> {
        (0..self.next_id)
            .map(FileId)
            .filter(|id| self.files.contains_key(id))
            .collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_get() {
        let mut vfs = Vfs::default();
        let id = vfs.create("/etc/ssh/key.pem", b"PEM".to_vec());
        assert_eq!(vfs.get(id).unwrap().name, "/etc/ssh/key.pem");
        assert_eq!(vfs.get(id).unwrap().content, b"PEM");
        assert_eq!(vfs.len(), 1);
    }

    #[test]
    fn ids_are_unique() {
        let mut vfs = Vfs::default();
        let a = vfs.create("a", vec![]);
        let b = vfs.create("b", vec![]);
        assert_ne!(a, b);
        assert!(vfs.get(FileId(99)).is_none());
    }

    #[test]
    fn display() {
        assert_eq!(FileId(5).to_string(), "file#5");
    }
}
