//! A pure-std stand-in for the slice of Criterion's API our benches use.
//!
//! The build environment has no registry access, so `criterion` cannot be a
//! dependency. This facade keeps the bench sources criterion-shaped
//! (`benchmark_group` / `bench_function` / `iter`) while timing with
//! `std::time::Instant`: each benchmark runs a short calibration pass, then
//! `SAMPLES` timed samples, and reports the median ns/iter.
//!
//! Run with `cargo bench -p bench` (optionally `-- <substring>` to filter).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark; the median is reported.
const SAMPLES: usize = 7;
/// Target wall time for one sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Iteration cap so pathological calibration can't spin forever.
const MAX_ITERS: u64 = 100_000;

/// Top-level driver: parses the filter from `std::env::args` and owns the
/// report stream.
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from the process arguments. Flags (`--bench`, which
    /// cargo passes to bench binaries) are ignored; the first bare argument
    /// becomes a substring filter on benchmark names.
    #[must_use]
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Self { filter }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter
            .as_deref()
            .map_or(true, |f| full_name.contains(f))
    }
}

/// Identifier combining a function name and a parameter, mirroring
/// criterion's `BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new(name: &str, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// How `iter_batched` sizes its batches. Retained for source compatibility;
/// the facade always runs one routine call per sample.
#[derive(Clone, Copy)]
pub enum BatchSize {
    /// Large per-iteration inputs (one setup + one routine call per sample).
    LargeInput,
    /// Small per-iteration inputs.
    SmallInput,
}

/// Declared throughput of a benchmark, reported as MB/s when set.
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Source-compatibility no-op (sampling is fixed in the facade).
    pub fn sample_size(&mut self, _n: usize) {}

    /// Declares throughput for subsequent benches (reported per-bench when
    /// the measured iteration time is known).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: impl BenchName, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.group, name.label());
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            median_ns: None,
        };
        f(&mut b);
        report(&full, b.median_ns);
    }

    /// Runs one benchmark that takes an input by reference.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.group, id.label);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            median_ns: None,
        };
        f(&mut b, input);
        report(&full, b.median_ns);
    }

    /// Ends the group (report lines are emitted eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Accepts both `&str` names and `BenchmarkId`s.
pub trait BenchName {
    /// The display label.
    fn label(&self) -> String;
}

impl BenchName for &str {
    fn label(&self) -> String {
        (*self).to_string()
    }
}

impl BenchName for BenchmarkId {
    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    median_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, calibrating an iteration count for ~40 ms samples
    /// and recording the median over [`SAMPLES`] samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: how many iterations fit the target sample time?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos())
            .clamp(1, u128::from(MAX_ITERS)) as u64;

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.median_ns = Some(median(&mut samples));
    }

    /// Times `routine` over fresh inputs from `setup` (one setup + one
    /// routine call per sample; `setup` time is excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        self.median_ns = Some(median(&mut samples));
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn report(name: &str, median_ns: Option<f64>) {
    match median_ns {
        Some(ns) if ns >= 1_000_000.0 => {
            println!("{name:<50} {:>12.3} ms/iter", ns / 1_000_000.0);
        }
        Some(ns) if ns >= 1_000.0 => {
            println!("{name:<50} {:>12.3} µs/iter", ns / 1_000.0);
        }
        Some(ns) => println!("{name:<50} {ns:>12.1} ns/iter"),
        None => println!("{name:<50}       (no measurement recorded)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_median() {
        let mut c = Criterion { filter: None };
        let mut ran = 0u64;
        let mut g = c.benchmark_group("t");
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion {
            filter: Some("only_this".into()),
        };
        assert!(c.matches("group/only_this_one"));
        assert!(!c.matches("group/other"));
    }

    #[test]
    fn batched_runs_setup_per_sample() {
        let mut c = Criterion { filter: None };
        let mut setups = 0u64;
        let mut g = c.benchmark_group("t");
        g.bench_with_input(BenchmarkId::new("b", 1), &(), |b, ()| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, SAMPLES as u64);
    }

    #[test]
    fn median_of_odd_sample_count() {
        let mut s = vec![5.0, 1.0, 3.0];
        assert_eq!(median(&mut s), 3.0);
    }
}
