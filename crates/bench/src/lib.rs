//! Benchmark-only crate. All content lives in `benches/`; see the workspace
//! README for how each bench group maps to a paper figure.
