//! Simulator microbenchmarks and the zeroing-policy ablation.
//!
//! `page_free_policy` is the cost side of the paper's kernel patch: how much
//! does clearing every freed page add to the allocator's free path? The
//! paper's answer at system level is "nothing measurable"; the microbench
//! shows the raw per-page cost that gets amortized away.

use bench::{BenchmarkId, Criterion};
use memsim::{Kernel, KernelPolicy, MachineConfig, PAGE_SIZE};
use simrng::Rng64;

fn machine(policy: KernelPolicy) -> Kernel {
    Kernel::new(
        MachineConfig::small()
            .with_mem_bytes(16 * 1024 * 1024)
            .with_policy(policy),
    )
}

fn bench_page_free_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_free_policy");
    for (name, policy) in [
        ("stock", KernelPolicy::stock()),
        ("zero_on_free", KernelPolicy::hardened()),
    ] {
        group.bench_with_input(BenchmarkId::new("alloc_free_64_pages", name), &policy, |b, p| {
            let mut k = machine(*p);
            b.iter(|| {
                let frames = k.alloc_kernel_pages(64).unwrap();
                k.free_kernel_pages(&frames);
            });
        });
    }
    group.finish();
}

fn bench_fork_and_cow(c: &mut Criterion) {
    let mut group = c.benchmark_group("process_lifecycle");
    group.bench_function("fork_exit_cycle", |b| {
        let mut k = machine(KernelPolicy::stock());
        let parent = k.spawn();
        let buf = k.heap_alloc(parent, 16 * PAGE_SIZE).unwrap();
        k.write_bytes(parent, buf, &vec![7u8; 16 * PAGE_SIZE]).unwrap();
        b.iter(|| {
            let child = k.fork(parent).unwrap();
            k.exit(child).unwrap();
        });
    });
    group.bench_function("cow_break_one_page", |b| {
        let mut k = machine(KernelPolicy::stock());
        let parent = k.spawn();
        let buf = k.heap_alloc(parent, PAGE_SIZE).unwrap();
        k.write_bytes(parent, buf, &vec![9u8; PAGE_SIZE]).unwrap();
        b.iter(|| {
            let child = k.fork(parent).unwrap();
            // The write faults and duplicates the page.
            k.write_bytes(child, buf, b"x").unwrap();
            k.exit(child).unwrap();
        });
    });
    group.finish();
}

fn bench_heap_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("user_heap");
    group.bench_function("alloc_write_free_8k", |b| {
        let mut k = machine(KernelPolicy::stock());
        let pid = k.spawn();
        let payload = vec![3u8; 8192];
        b.iter(|| {
            let a = k.heap_alloc(pid, 8192).unwrap();
            k.write_bytes(pid, a, &payload).unwrap();
            k.heap_free(pid, a).unwrap();
        });
    });
    group.finish();
}

fn bench_aging(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_setup");
    group.sample_size(10);
    group.bench_function("age_16mb", |b| {
        b.iter(|| {
            let mut k = machine(KernelPolicy::stock());
            k.age_memory(&mut Rng64::new(1), 1.0)
        });
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::from_args();
    bench_page_free_policy(&mut c);
    bench_fork_and_cow(&mut c);
    bench_heap_churn(&mut c);
    bench_aging(&mut c);
}
