//! Scanner throughput — the §3.1 claim: the `scanmemory` module's linear
//! scan is O(n) and took ~5 s for 256 MB on 2007 hardware. This bench
//! measures our equivalent across memory sizes and pattern counts, compares
//! the skip-loop core against the naive per-offset oracle, and measures the
//! incremental dirty-frame scanner on a timeline-style workload.
//!
//! `cargo bench -p bench --bench scan_cost -- --smoke` runs a fixed smoke
//! measurement instead and writes machine-readable `BENCH_scan.json`
//! (full-scan bytes/sec, incremental-vs-full speedup, frames rescanned) to
//! the current directory — the artifact `scripts/ci.sh` archives.

use bench::{BenchmarkId, Criterion, Throughput};
use keyscan::{IncrementalScanner, Scanner};
use memsim::{Kernel, MachineConfig};
use rsa_repro::material::{KeyMaterial, Pattern};
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;
use std::time::{Duration, Instant};

fn populated_machine(mb: usize) -> (Kernel, KeyMaterial) {
    let mut k = Kernel::new(MachineConfig::small().with_mem_bytes(mb * 1024 * 1024));
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(1));
    let material = KeyMaterial::from_key(&key);
    // Plant a handful of copies so the scan does some real matching work.
    let pid = k.spawn();
    for i in 0..8 {
        let buf = k.heap_alloc(pid, 4096).unwrap();
        let bytes = if i % 2 == 0 {
            material.p_bytes()
        } else {
            material.d_bytes()
        };
        k.write_bytes(pid, buf, bytes).unwrap();
    }
    (k, material)
}

fn bench_scan_by_memory_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_memory_size");
    group.sample_size(10);
    for mb in [4usize, 16, 64] {
        let (k, material) = populated_machine(mb);
        let scanner = Scanner::from_material(&material);
        group.throughput(Throughput::Bytes((mb * 1024 * 1024) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(mb), &mb, |b, _| {
            b.iter(|| scanner.scan_kernel(std::hint::black_box(&k)).total());
        });
    }
    group.finish();
}

fn bench_scan_by_pattern_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_pattern_count");
    group.sample_size(10);
    let (k, material) = populated_machine(16);
    for n in [1usize, 4, 16] {
        let mut patterns: Vec<Pattern> =
            material.patterns().iter().map(Pattern::clone_secret).collect();
        let mut rng = Rng64::new(2);
        while patterns.len() < n {
            patterns.push(Pattern::new("filler", rng.gen_bytes(64)));
        }
        patterns.truncate(n);
        let scanner = Scanner::new(patterns);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| scanner.scan_kernel(std::hint::black_box(&k)).total());
        });
    }
    group.finish();
}

fn bench_fast_vs_naive_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_core");
    group.sample_size(10);
    let (k, material) = populated_machine(4);
    let scanner = Scanner::from_material(&material);
    let hay = k.phys().to_vec();
    group.throughput(Throughput::Bytes(hay.len() as u64));
    group.bench_function("fast_skip_loop", |b| {
        b.iter(|| scanner.scan_bytes(std::hint::black_box(&hay)).len());
    });
    group.bench_function("naive_per_offset", |b| {
        b.iter(|| scanner.scan_bytes_naive(std::hint::black_box(&hay)).len());
    });
    group.finish();
}

/// A timeline-shaped workload: per tick, a process dirties a few pages, then
/// memory is scanned — the harness's scan-dominated inner loop.
fn drive_ticks(
    mb: usize,
    ticks: usize,
    mut scan: impl FnMut(&Kernel),
) -> Duration {
    let (mut k, _material) = populated_machine(mb);
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 4 * 4096).expect("alloc");
    let start = Instant::now();
    for t in 0..ticks {
        k.write_bytes(pid, buf, &[t as u8; 3 * 4096]).expect("write");
        scan(&k);
    }
    start.elapsed()
}

fn bench_incremental_timeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_timeline");
    group.sample_size(10);
    let (_, material) = populated_machine(4);
    group.bench_function("full_per_tick", |b| {
        let scanner = Scanner::from_material(&material);
        b.iter(|| {
            drive_ticks(16, 8, |k| {
                std::hint::black_box(scanner.scan_kernel(k).total());
            })
        });
    });
    group.bench_function("incremental_per_tick", |b| {
        b.iter(|| {
            let mut inc = IncrementalScanner::new(Scanner::from_material(&material));
            drive_ticks(16, 8, |k| {
                std::hint::black_box(inc.scan(k).total());
            })
        });
    });
    group.finish();
}

/// Fixed smoke measurement for CI: one full-scan throughput number, one
/// incremental-vs-full timeline speedup, written as `BENCH_scan.json`.
fn smoke() {
    const MB: usize = 32;
    const TICKS: usize = 24;
    let (k, material) = populated_machine(MB);
    let scanner = Scanner::from_material(&material);

    // Full-scan throughput over physical memory (best of 3).
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(scanner.scan_kernel(&k).total());
        best = best.min(t0.elapsed());
    }
    let bytes = (MB * 1024 * 1024) as f64;
    let full_bytes_per_sec = bytes / best.as_secs_f64().max(1e-9);

    // Scan-dominated timeline: identical workload, full vs incremental.
    let full_wall = drive_ticks(MB, TICKS, |k| {
        std::hint::black_box(scanner.scan_kernel(k).total());
    });
    let mut inc = IncrementalScanner::new(Scanner::from_material(&material));
    let inc_wall = drive_ticks(MB, TICKS, |k| {
        std::hint::black_box(inc.scan(k).total());
    });
    let stats = inc.stats();
    let speedup = full_wall.as_secs_f64() / inc_wall.as_secs_f64().max(1e-9);

    let json = format!(
        "{{\n  \"mem_mb\": {MB},\n  \"ticks\": {TICKS},\n  \"full_scan_bytes_per_sec\": {full_bytes_per_sec:.0},\n  \"timeline_full_wall_s\": {:.6},\n  \"timeline_incremental_wall_s\": {:.6},\n  \"incremental_speedup\": {speedup:.2},\n  \"scans\": {},\n  \"frames_rescanned\": {},\n  \"frames_total\": {},\n  \"rescan_fraction\": {:.6}\n}}\n",
        full_wall.as_secs_f64(),
        inc_wall.as_secs_f64(),
        stats.scans,
        stats.frames_rescanned,
        stats.frames_total,
        stats.rescan_fraction(),
    );
    // Cargo runs benches with the package dir as cwd; anchor the artifact
    // at the workspace root where scripts/ci.sh expects it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    std::fs::write(path, &json).expect("write BENCH_scan.json");
    print!("{json}");
    println!(
        "smoke: full scan {:.0} MB/s; timeline speedup {speedup:.2}x ({} of {} frames rescanned)",
        full_bytes_per_sec / (1024.0 * 1024.0),
        stats.frames_rescanned,
        stats.frames_total,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let mut c = Criterion::from_args();
    bench_scan_by_memory_size(&mut c);
    bench_scan_by_pattern_count(&mut c);
    bench_fast_vs_naive_core(&mut c);
    bench_incremental_timeline(&mut c);
}
