//! Scanner throughput — the §3.1 claim: the `scanmemory` module's linear
//! scan is O(n) and took ~5 s for 256 MB on 2007 hardware. This bench
//! measures our equivalent across memory sizes and pattern counts.

use bench::{BenchmarkId, Criterion, Throughput};
use keyscan::Scanner;
use memsim::{Kernel, MachineConfig};
use rsa_repro::material::{KeyMaterial, Pattern};
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;

fn populated_machine(mb: usize) -> (Kernel, KeyMaterial) {
    let mut k = Kernel::new(MachineConfig::small().with_mem_bytes(mb * 1024 * 1024));
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(1));
    let material = KeyMaterial::from_key(&key);
    // Plant a handful of copies so the scan does some real matching work.
    let pid = k.spawn();
    for i in 0..8 {
        let buf = k.heap_alloc(pid, 4096).unwrap();
        let bytes = if i % 2 == 0 {
            material.p_bytes()
        } else {
            material.d_bytes()
        };
        k.write_bytes(pid, buf, bytes).unwrap();
    }
    (k, material)
}

fn bench_scan_by_memory_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_memory_size");
    group.sample_size(10);
    for mb in [4usize, 16, 64] {
        let (k, material) = populated_machine(mb);
        let scanner = Scanner::from_material(&material);
        group.throughput(Throughput::Bytes((mb * 1024 * 1024) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(mb), &mb, |b, _| {
            b.iter(|| scanner.scan_kernel(std::hint::black_box(&k)).total());
        });
    }
    group.finish();
}

fn bench_scan_by_pattern_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_pattern_count");
    group.sample_size(10);
    let (k, material) = populated_machine(16);
    for n in [1usize, 4, 16] {
        let mut patterns: Vec<Pattern> =
            material.patterns().iter().map(Pattern::clone_secret).collect();
        let mut rng = Rng64::new(2);
        while patterns.len() < n {
            patterns.push(Pattern::new("filler", rng.gen_bytes(64)));
        }
        patterns.truncate(n);
        let scanner = Scanner::new(patterns);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| scanner.scan_kernel(std::hint::black_box(&k)).total());
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::from_args();
    bench_scan_by_memory_size(&mut c);
    bench_scan_by_pattern_count(&mut c);
}
