//! Scanner throughput — the §3.1 claim: the `scanmemory` module's linear
//! scan is O(n) and took ~5 s for 256 MB on 2007 hardware. This bench
//! measures our equivalent across memory sizes and pattern counts, compares
//! the skip-loop core against the naive per-offset oracle, and measures the
//! incremental dirty-frame scanner on a timeline-style workload.
//!
//! `cargo bench -p bench --bench scan_cost -- --smoke` runs a fixed smoke
//! measurement instead and writes machine-readable `BENCH_scan.json`
//! (full-scan bytes/sec, incremental-vs-full speedup, frames rescanned) to
//! the current directory — the artifact `scripts/ci.sh` archives.

use bench::{BenchmarkId, Criterion, Throughput};
use keyscan::{IncrementalScanner, Scanner};
use memsim::{Kernel, MachineConfig};
use rsa_repro::material::{KeyMaterial, Pattern};
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;
use std::time::{Duration, Instant};

fn populated_machine(mb: usize) -> (Kernel, KeyMaterial) {
    let mut k = Kernel::new(MachineConfig::small().with_mem_bytes(mb * 1024 * 1024));
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(1));
    let material = KeyMaterial::from_key(&key);
    // Plant a handful of copies so the scan does some real matching work.
    let pid = k.spawn();
    for i in 0..8 {
        let buf = k.heap_alloc(pid, 4096).unwrap();
        let bytes = if i % 2 == 0 {
            material.p_bytes()
        } else {
            material.d_bytes()
        };
        k.write_bytes(pid, buf, bytes).unwrap();
    }
    (k, material)
}

fn bench_scan_by_memory_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_memory_size");
    group.sample_size(10);
    for mb in [4usize, 16, 64] {
        let (k, material) = populated_machine(mb);
        let scanner = Scanner::from_material(&material);
        group.throughput(Throughput::Bytes((mb * 1024 * 1024) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(mb), &mb, |b, _| {
            b.iter(|| scanner.scan_kernel(std::hint::black_box(&k)).total());
        });
    }
    group.finish();
}

fn bench_scan_by_pattern_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_pattern_count");
    group.sample_size(10);
    let (k, material) = populated_machine(16);
    for n in [1usize, 4, 16] {
        let mut patterns: Vec<Pattern> =
            material.patterns().iter().map(Pattern::clone_secret).collect();
        let mut rng = Rng64::new(2);
        while patterns.len() < n {
            patterns.push(Pattern::new("filler", rng.gen_bytes(64)));
        }
        patterns.truncate(n);
        let scanner = Scanner::new(patterns);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| scanner.scan_kernel(std::hint::black_box(&k)).total());
        });
    }
    group.finish();
}

fn bench_match_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_core");
    group.sample_size(10);
    let (k, material) = populated_machine(4);
    let scanner = Scanner::from_material(&material);
    let hay = k.phys().to_vec();
    group.throughput(Throughput::Bytes(hay.len() as u64));
    group.bench_function("swar_prefilter", |b| {
        b.iter(|| scanner.scan_bytes_swar(std::hint::black_box(&hay)).len());
    });
    group.bench_function("horspool_skip_loop", |b| {
        b.iter(|| scanner.scan_bytes_horspool(std::hint::black_box(&hay)).len());
    });
    group.bench_function("naive_per_offset", |b| {
        b.iter(|| scanner.scan_bytes_naive(std::hint::black_box(&hay)).len());
    });
    group.finish();
}

fn bench_sharded_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_sharded");
    group.sample_size(10);
    // One large kernel; the sweep is split *inside* the single machine.
    let (k, material) = populated_machine(64);
    let scanner = Scanner::from_material(&material);
    group.throughput(Throughput::Bytes(k.phys().len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| scanner.scan_kernel_sharded(std::hint::black_box(&k), t).total());
        });
    }
    group.finish();
}

/// A timeline-shaped workload: per tick, a process dirties a few pages, then
/// memory is scanned — the harness's scan-dominated inner loop.
fn drive_ticks(
    mb: usize,
    ticks: usize,
    mut scan: impl FnMut(&Kernel),
) -> Duration {
    let (mut k, _material) = populated_machine(mb);
    let pid = k.spawn();
    let buf = k.heap_alloc(pid, 4 * 4096).expect("alloc");
    let start = Instant::now();
    for t in 0..ticks {
        k.write_bytes(pid, buf, &[t as u8; 3 * 4096]).expect("write");
        scan(&k);
    }
    start.elapsed()
}

fn bench_incremental_timeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_timeline");
    group.sample_size(10);
    let (_, material) = populated_machine(4);
    group.bench_function("full_per_tick", |b| {
        let scanner = Scanner::from_material(&material);
        b.iter(|| {
            drive_ticks(16, 8, |k| {
                std::hint::black_box(scanner.scan_kernel(k).total());
            })
        });
    });
    group.bench_function("incremental_per_tick", |b| {
        b.iter(|| {
            let mut inc = IncrementalScanner::new(Scanner::from_material(&material));
            drive_ticks(16, 8, |k| {
                std::hint::black_box(inc.scan(k).total());
            })
        });
    });
    group.finish();
}

/// Best-of-`n` wall clock of one closure.
fn best_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..n {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Fixed smoke measurement for CI: full-scan throughput, the SWAR-vs-Horspool
/// match-core speedup, the intra-kernel sharded-scan speedup per thread
/// count, and the incremental-vs-full timeline speedup, written as
/// `BENCH_scan.json`.
fn smoke() {
    const MB: usize = 32;
    const TICKS: usize = 24;
    let (k, material) = populated_machine(MB);
    let scanner = Scanner::from_material(&material);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Full-scan throughput over physical memory (best of 3; the scanner
    // dispatches the SWAR prefilter core).
    let best = best_of(3, || {
        std::hint::black_box(scanner.scan_kernel(&k).total());
    });
    let bytes = (MB * 1024 * 1024) as f64;
    let full_bytes_per_sec = bytes / best.as_secs_f64().max(1e-9);

    // Match cores head to head on the same physical image.
    let swar_wall = best_of(3, || {
        std::hint::black_box(scanner.scan_bytes_swar(k.phys()).len());
    });
    let horspool_wall = best_of(3, || {
        std::hint::black_box(scanner.scan_bytes_horspool(k.phys()).len());
    });
    let swar_bytes_per_sec = bytes / swar_wall.as_secs_f64().max(1e-9);
    let horspool_bytes_per_sec = bytes / horspool_wall.as_secs_f64().max(1e-9);
    let swar_speedup = horspool_wall.as_secs_f64() / swar_wall.as_secs_f64().max(1e-9);

    // Intra-kernel sharding: one machine's sweep split across N threads.
    let serial_wall = best_of(3, || {
        std::hint::black_box(scanner.scan_kernel_sharded(&k, 1).total());
    });
    let mut sharded = Vec::new(); // (threads, speedup vs serial)
    for threads in [2usize, 4, 8] {
        let wall = best_of(3, || {
            std::hint::black_box(scanner.scan_kernel_sharded(&k, threads).total());
        });
        sharded.push((threads, serial_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9)));
    }
    let sharded_speedup_4 = sharded
        .iter()
        .find(|&&(t, _)| t == 4)
        .map_or(1.0, |&(_, s)| s);

    // Scan-dominated timeline: identical workload, full vs incremental.
    let full_wall = drive_ticks(MB, TICKS, |k| {
        std::hint::black_box(scanner.scan_kernel(k).total());
    });
    let mut inc = IncrementalScanner::new(Scanner::from_material(&material));
    let inc_wall = drive_ticks(MB, TICKS, |k| {
        std::hint::black_box(inc.scan(k).total());
    });
    let stats = inc.stats();
    let speedup = full_wall.as_secs_f64() / inc_wall.as_secs_f64().max(1e-9);

    let json = format!(
        "{{\n  \"mem_mb\": {MB},\n  \"ticks\": {TICKS},\n  \"cores\": {cores},\n  \"full_scan_bytes_per_sec\": {full_bytes_per_sec:.0},\n  \"swar_bytes_per_sec\": {swar_bytes_per_sec:.0},\n  \"horspool_bytes_per_sec\": {horspool_bytes_per_sec:.0},\n  \"swar_filter_speedup\": {swar_speedup:.2},\n  \"sharded_scan_speedup_2\": {:.2},\n  \"sharded_scan_speedup_4\": {sharded_speedup_4:.2},\n  \"sharded_scan_speedup_8\": {:.2},\n  \"sharded_scan_speedup\": {sharded_speedup_4:.2},\n  \"timeline_full_wall_s\": {:.6},\n  \"timeline_incremental_wall_s\": {:.6},\n  \"incremental_speedup\": {speedup:.2},\n  \"scans\": {},\n  \"frames_rescanned\": {},\n  \"frames_total\": {},\n  \"rescan_fraction\": {:.6}\n}}\n",
        sharded[0].1,
        sharded[2].1,
        full_wall.as_secs_f64(),
        inc_wall.as_secs_f64(),
        stats.scans,
        stats.frames_rescanned,
        stats.frames_total,
        stats.rescan_fraction(),
    );
    // Cargo runs benches with the package dir as cwd; anchor the artifact
    // at the workspace root where scripts/ci.sh expects it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    std::fs::write(path, &json).expect("write BENCH_scan.json");
    print!("{json}");
    println!(
        "smoke: full scan {:.0} MB/s ({cores} core(s)); swar/horspool {swar_speedup:.2}x; \
         sharded x4 {sharded_speedup_4:.2}x; timeline speedup {speedup:.2}x ({} of {} frames rescanned)",
        full_bytes_per_sec / (1024.0 * 1024.0),
        stats.frames_rescanned,
        stats.frames_total,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let mut c = Criterion::from_args();
    bench_scan_by_memory_size(&mut c);
    bench_scan_by_pattern_count(&mut c);
    bench_match_cores(&mut c);
    bench_sharded_scan(&mut c);
    bench_incremental_timeline(&mut c);
}
