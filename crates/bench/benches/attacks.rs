//! Attack benchmarks regenerating single points of Figures 1–4 and 7, plus
//! the hot-list ablation (why freshly freed pages dominate the ext2 leak).

use bench::{BenchmarkId, Criterion};
use exploits::{Ext2DirentLeak, TtyMemoryDump};
use harness::{ExperimentConfig, ServerKind};
use keyguard::ProtectionLevel;
use keyscan::Scanner;
use servers::{SecureServer, ServerConfig, SshServer};
use simrng::Rng64;

fn workload_machine(
    level: ProtectionLevel,
) -> (memsim::Kernel, Scanner) {
    let cfg = ExperimentConfig::test();
    let mut rng = Rng64::new(11);
    let mut kernel = cfg.boot_machine(level, &mut rng);
    let mut ssh = SshServer::start(
        &mut kernel,
        ServerConfig::new(level).with_key_bits(cfg.key_bits),
    )
    .unwrap();
    ssh.set_concurrency(&mut kernel, 8).unwrap();
    ssh.pump(&mut kernel, 16).unwrap();
    ssh.set_concurrency(&mut kernel, 0).unwrap();
    let scanner = Scanner::from_material(ssh.material());
    (kernel, scanner)
}

fn bench_ext2_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_ext2_attack_point");
    group.sample_size(10);
    for level in [ProtectionLevel::None, ProtectionLevel::Kernel] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.label()),
            &level,
            |b, &level| {
                b.iter_batched(
                    || workload_machine(level),
                    |(mut kernel, scanner)| {
                        let capture = Ext2DirentLeak::new(500).run(&mut kernel).unwrap();
                        capture.keys_found(&scanner)
                    },
                    bench::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_tty_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig7_tty_attack_point");
    group.sample_size(10);
    for level in [ProtectionLevel::None, ProtectionLevel::Integrated] {
        let (kernel, scanner) = workload_machine(level);
        let dump = TtyMemoryDump::paper();
        group.bench_with_input(
            BenchmarkId::from_parameter(level.label()),
            &level,
            |b, _| {
                let mut rng = Rng64::new(12);
                b.iter(|| {
                    let capture = dump.run(&kernel, &mut rng);
                    capture.keys_found(&scanner)
                });
            },
        );
    }
    group.finish();
}

fn bench_sweep_throughput(c: &mut Criterion) {
    // How long one full repetition of a sweep point takes end to end — the
    // unit of work behind Figures 1–4.
    let mut group = c.benchmark_group("sweep_repetition");
    group.sample_size(10);
    let cfg = ExperimentConfig::test().with_repetitions(1);
    group.bench_function("ssh_ext2_one_rep", |b| {
        b.iter(|| {
            harness::attack_sweep::ext2_sweep(
                ServerKind::Ssh,
                ProtectionLevel::None,
                &[20],
                &[300],
                &cfg,
            )
            .unwrap()
        });
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::from_args();
    bench_ext2_attack(&mut c);
    bench_tty_attack(&mut c);
    bench_sweep_throughput(&mut c);
}
