//! RSA microbenchmarks and the Montgomery-cache ablation.
//!
//! The cache ablation quantifies the security/performance trade the paper's
//! `RSA_memory_align()` makes when it clears `RSA_FLAG_CACHE_PRIVATE`:
//! caching saves per-op Montgomery setup but keeps copies of P and Q alive.

use bignum::BigUint;
use bench::{BenchmarkId, Criterion};
use rsa_repro::{CrtEngine, RsaPrivateKey};
use simrng::Rng64;

fn bench_handshakes(c: &mut Criterion) {
    // Full wire-protocol handshakes: the unit of work behind every
    // connection in the perf figures.
    let mut group = c.benchmark_group("wire_handshake");
    let key = RsaPrivateKey::generate(1024, &mut Rng64::new(4));
    group.bench_function("tls_rsa", |b| {
        let mut engine = CrtEngine::new(key.clone_secret(), true);
        let mut rng = Rng64::new(5);
        b.iter(|| {
            let (client, bundle) =
                wireproto::tls::Client::start(key.public_key(), &mut rng).unwrap();
            let (sk, reply) = wireproto::tls::accept(&mut engine, &bundle, &mut rng).unwrap();
            let ck = client.finish(&reply).unwrap();
            assert_eq!(ck, sk);
        });
    });
    group.bench_function("ssh_kex", |b| {
        let mut engine = CrtEngine::new(key.clone_secret(), true);
        let mut rng = Rng64::new(6);
        b.iter(|| {
            let (client, bundle) = wireproto::ssh::Client::start(key.public_key(), &mut rng);
            let (sk, reply) = wireproto::ssh::accept(&mut engine, &bundle, &mut rng).unwrap();
            let ck = client.finish(&reply).unwrap();
            assert_eq!(ck, sk);
        });
    });
    group.bench_function("blinding_overhead", |b| {
        let mut engine = CrtEngine::new(key.clone_secret(), true).with_blinding(7);
        let ct = key
            .public_key()
            .encrypt_raw(&BigUint::from_u64(0xFEED))
            .unwrap();
        engine.private_op(&ct).unwrap();
        b.iter(|| engine.private_op(std::hint::black_box(&ct)).unwrap());
    });
    group.finish();
}

fn bench_private_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_private_op");
    for bits in [512usize, 1024] {
        let key = RsaPrivateKey::generate(bits, &mut Rng64::new(1));
        let ct = key
            .public_key()
            .encrypt_raw(&BigUint::from_u64(0xDEAD_BEEF))
            .unwrap();
        group.bench_with_input(BenchmarkId::new("raw", bits), &bits, |b, _| {
            b.iter(|| key.private_op_raw(std::hint::black_box(&ct)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("crt", bits), &bits, |b, _| {
            b.iter(|| key.private_op_crt(std::hint::black_box(&ct)).unwrap());
        });
    }
    group.finish();
}

fn bench_mont_cache_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mont_cache_ablation");
    let key = RsaPrivateKey::generate(1024, &mut Rng64::new(2));
    let ct = key
        .public_key()
        .encrypt_raw(&BigUint::from_u64(0xCAFE))
        .unwrap();
    // Cached: contexts built once, reused (RSA_FLAG_CACHE_PRIVATE set).
    group.bench_function("cached", |b| {
        let mut eng = CrtEngine::new(key.clone_secret(), true);
        eng.private_op(&ct).unwrap(); // warm the cache
        b.iter(|| eng.private_op(std::hint::black_box(&ct)).unwrap());
    });
    // Uncached: fresh contexts every op (the protected configuration).
    group.bench_function("uncached", |b| {
        let mut eng = CrtEngine::new(key.clone_secret(), false);
        b.iter(|| eng.private_op(std::hint::black_box(&ct)).unwrap());
    });
    group.finish();
}

fn bench_keygen_and_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_key_lifecycle");
    group.sample_size(10);
    group.bench_function("generate_512", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            RsaPrivateKey::generate(512, &mut Rng64::new(seed))
        });
    });
    let key = RsaPrivateKey::generate(1024, &mut Rng64::new(3));
    group.bench_function("to_pem_1024", |b| b.iter(|| key.to_pem()));
    let pem = key.to_pem();
    group.bench_function("from_pem_1024", |b| {
        b.iter(|| RsaPrivateKey::from_pem(std::hint::black_box(&pem)).unwrap());
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::from_args();
    bench_private_ops(&mut c);
    bench_mont_cache_ablation(&mut c);
    bench_keygen_and_codec(&mut c);
    bench_handshakes(&mut c);
}
