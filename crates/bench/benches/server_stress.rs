//! Server stress benchmarks — Figures 8 and 19–20: the same transaction
//! workload with protections off and on. The paper's claim is that the two
//! bars are indistinguishable; Criterion quantifies the difference
//! statistically.

use bench::{BenchmarkId, Criterion};
use harness::ExperimentConfig;
use keyguard::ProtectionLevel;
use servers::{ApacheServer, SecureServer, ServerConfig, SshServer};
use simrng::Rng64;

const TRANSACTIONS_PER_ITER: usize = 25;

fn bench_ssh_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_ssh_stress");
    group.sample_size(10);
    let cfg = ExperimentConfig::test();
    for level in [ProtectionLevel::None, ProtectionLevel::Integrated] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.label()),
            &level,
            |b, &level| {
                let mut rng = Rng64::new(21);
                let mut kernel = cfg.boot_machine(level, &mut rng);
                let mut ssh = SshServer::start(
                    &mut kernel,
                    ServerConfig::new(level).with_key_bits(cfg.key_bits),
                )
                .unwrap();
                ssh.set_concurrency(&mut kernel, 8).unwrap();
                b.iter(|| {
                    ssh.pump(&mut kernel, TRANSACTIONS_PER_ITER).unwrap();
                    ssh.transfer(&mut kernel, 100 * 1024).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_apache_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_20_apache_stress");
    group.sample_size(10);
    let cfg = ExperimentConfig::test();
    for level in [ProtectionLevel::None, ProtectionLevel::Integrated] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.label()),
            &level,
            |b, &level| {
                let mut rng = Rng64::new(22);
                let mut kernel = cfg.boot_machine(level, &mut rng);
                let mut apache = ApacheServer::start(
                    &mut kernel,
                    ServerConfig::new(level).with_key_bits(cfg.key_bits),
                )
                .unwrap();
                apache.set_concurrency(&mut kernel, 8).unwrap();
                b.iter(|| {
                    apache.pump(&mut kernel, TRANSACTIONS_PER_ITER).unwrap();
                    apache.transfer(&mut kernel, 32 * 1024).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_cow_consolidation_ablation(c: &mut Criterion) {
    // Ablation: cost of serving a connection when the key is aligned
    // (single COW page, no per-worker duplication) vs scattered. This is
    // the "does copy minimization cost anything?" question in isolation.
    let mut group = c.benchmark_group("cow_consolidation_ablation");
    group.sample_size(10);
    let cfg = ExperimentConfig::test();
    for (name, level) in [
        ("scattered", ProtectionLevel::None),
        ("aligned", ProtectionLevel::Application),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &level, |b, &level| {
            let mut rng = Rng64::new(23);
            let mut kernel = cfg.boot_machine(level, &mut rng);
            let mut ssh = SshServer::start(
                &mut kernel,
                ServerConfig::new(level).with_key_bits(cfg.key_bits),
            )
            .unwrap();
            b.iter(|| {
                // One full connection lifecycle.
                ssh.set_concurrency(&mut kernel, 1).unwrap();
                ssh.set_concurrency(&mut kernel, 0).unwrap();
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::from_args();
    bench_ssh_stress(&mut c);
    bench_apache_stress(&mut c);
    bench_cow_consolidation_ablation(&mut c);
}
