//! Property tests for the wire protocols: arbitrary payloads round-trip the
//! channel, arbitrary byte noise never panics the decoders, and handshakes
//! agree for every seed.

use proptest::prelude::*;
use rsa_repro::{CrtEngine, RsaPrivateKey};
use simrng::Rng64;
use wireproto::{Record, RecordType, Role, SecureChannel, SessionKeys};

fn channel_pair(secret: &[u8]) -> (SecureChannel, SecureChannel) {
    let keys = SessionKeys::derive(secret, 7, 9);
    (
        SecureChannel::new(keys.clone(), Role::Client),
        SecureChannel::new(keys, Role::Server),
    )
}

proptest! {
    #[test]
    fn any_payload_round_trips_the_channel(
        secret in proptest::collection::vec(any::<u8>(), 1..64),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..2048), 1..8),
    ) {
        let (mut client, mut server) = channel_pair(&secret);
        for p in &payloads {
            let wire = client.seal(p);
            let (back, used) = server.open(&wire).unwrap();
            prop_assert_eq!(&back, p);
            prop_assert_eq!(used, wire.len());
        }
    }

    #[test]
    fn decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; no panic is the property.
        let _ = Record::decode(&noise);
        let (mut _c, mut server) = channel_pair(b"k");
        let _ = server.open(&noise);
    }

    #[test]
    fn bit_flips_never_open(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_byte in 5usize..64,
        flip_bit in 0u8..8,
    ) {
        let (mut client, mut server) = channel_pair(b"session secret");
        let mut wire = client.seal(&payload);
        let idx = flip_byte % wire.len();
        if idx >= 5 {
            // Skip header flips (those fail framing, also fine) and flip the
            // body: the MAC must catch it.
            wire[idx] ^= 1 << flip_bit;
            prop_assert!(server.open(&wire).is_err());
        }
    }

    #[test]
    fn record_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let rec = Record::new(RecordType::Data, payload);
        let (back, used) = Record::decode(&rec.encode()).unwrap();
        prop_assert_eq!(back, rec.clone());
        prop_assert_eq!(used, rec.encode().len());
    }
}

/// Handshake agreement across many seeds (moderate key size, so generate
/// once and vary the transcript randomness).
#[test]
fn handshakes_agree_for_many_seeds() {
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(61));
    for seed in 0..12u64 {
        let mut rng = Rng64::new(1000 + seed);
        // TLS shape.
        let mut engine = CrtEngine::new(key.clone(), true);
        let (client, bundle) = wireproto::tls::Client::start(key.public_key(), &mut rng).unwrap();
        let (sk, reply) = wireproto::tls::accept(&mut engine, &bundle, &mut rng).unwrap();
        assert_eq!(client.finish(&reply).unwrap(), sk, "tls seed {seed}");
        // SSH shape.
        let mut engine = CrtEngine::new(key.clone(), false);
        let (client, bundle) = wireproto::ssh::Client::start(key.public_key(), &mut rng);
        let (sk, reply) = wireproto::ssh::accept(&mut engine, &bundle, &mut rng).unwrap();
        assert_eq!(client.finish(&reply).unwrap(), sk, "ssh seed {seed}");
    }
}

/// A full application exchange over a handshake-derived channel.
#[test]
fn end_to_end_session_over_tls_handshake() {
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(62));
    let mut engine = CrtEngine::new(key.clone(), true).with_blinding(77);
    let mut rng = Rng64::new(63);
    let (client, bundle) = wireproto::tls::Client::start(key.public_key(), &mut rng).unwrap();
    let (server_keys, reply) = wireproto::tls::accept(&mut engine, &bundle, &mut rng).unwrap();
    let client_keys = client.finish(&reply).unwrap();

    let mut c = SecureChannel::new(client_keys, Role::Client);
    let mut s = SecureChannel::new(server_keys, Role::Server);
    for msg in [&b"GET / HTTP/1.0"[..], b"", b"0123456789".repeat(100).as_slice()] {
        let wire = c.seal(msg);
        let (back, _) = s.open(&wire).unwrap();
        assert_eq!(back, msg);
        let resp = s.seal(b"200 OK");
        let (back, _) = c.open(&resp).unwrap();
        assert_eq!(back, b"200 OK");
    }
}

proptest! {
    /// Handshake acceptors must never panic on corrupted bundles — a valid
    /// bundle with random mutations either handshakes or errors.
    #[test]
    fn corrupted_handshake_bundles_never_panic(
        flip_at in 0usize..160,
        bit in 0u8..8,
        truncate_to in 0usize..160,
    ) {
        let key = RsaPrivateKey::generate(512, &mut Rng64::new(71));
        let mut rng = Rng64::new(72);

        // TLS bundle.
        let (_c, mut bundle) = wireproto::tls::Client::start(key.public_key(), &mut rng).unwrap();
        let mut engine = CrtEngine::new(key.clone(), true);
        if !bundle.is_empty() {
            let i = flip_at % bundle.len();
            bundle[i] ^= 1 << bit;
        }
        let _ = wireproto::tls::accept(&mut engine, &bundle, &mut rng);
        let shorter = &bundle[..truncate_to.min(bundle.len())];
        let _ = wireproto::tls::accept(&mut engine, shorter, &mut rng);

        // SSH bundle.
        let (_c, mut bundle) = wireproto::ssh::Client::start(key.public_key(), &mut rng);
        if !bundle.is_empty() {
            let i = flip_at % bundle.len();
            bundle[i] ^= 1 << bit;
        }
        let _ = wireproto::ssh::accept(&mut engine, &bundle, &mut rng);
        let shorter = &bundle[..truncate_to.min(bundle.len())];
        let _ = wireproto::ssh::accept(&mut engine, shorter, &mut rng);
    }
}
