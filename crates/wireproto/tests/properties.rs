//! Property tests for the wire protocols: arbitrary payloads round-trip the
//! channel, arbitrary byte noise never panics the decoders, and handshakes
//! agree for every seed.
//!
//! Runs on `simrng::propcheck` (pure std) so the suite works with no
//! registry access.

use rsa_repro::{CrtEngine, RsaPrivateKey};
use simrng::propcheck;
use simrng::Rng64;
use wireproto::{Record, RecordType, Role, SecureChannel, SessionKeys};

fn channel_pair(secret: &[u8]) -> (SecureChannel, SecureChannel) {
    let keys = SessionKeys::derive(secret, 7, 9);
    (
        SecureChannel::new(keys.clone(), Role::Client),
        SecureChannel::new(keys, Role::Server),
    )
}

#[test]
fn any_payload_round_trips_the_channel() {
    propcheck::cases(48, |g| {
        let secret = g.bytes(1..64);
        let (mut client, mut server) = channel_pair(&secret);
        for _ in 0..g.usize_in(1..8) {
            let p = g.bytes(0..2048);
            let wire = client.seal(&p);
            let (back, used) = server.open(&wire).unwrap();
            assert_eq!(back, p);
            assert_eq!(used, wire.len());
        }
    });
}

#[test]
fn decoder_never_panics_on_noise() {
    propcheck::cases(256, |g| {
        let noise = g.bytes(0..256);
        // Any result is fine; no panic is the property.
        let _ = Record::decode(&noise);
        let (mut _c, mut server) = channel_pair(b"k");
        let _ = server.open(&noise);
    });
}

#[test]
fn bit_flips_never_open() {
    propcheck::cases(128, |g| {
        let payload = g.bytes(1..128);
        let flip_byte = g.usize_in(5..64);
        let flip_bit = g.u8() % 8;
        let (mut client, mut server) = channel_pair(b"session secret");
        let mut wire = client.seal(&payload);
        let idx = flip_byte % wire.len();
        if idx >= 5 {
            // Skip header flips (those fail framing, also fine) and flip the
            // body: the MAC must catch it.
            wire[idx] ^= 1 << flip_bit;
            assert!(server.open(&wire).is_err());
        }
    });
}

#[test]
fn record_round_trip() {
    propcheck::cases(128, |g| {
        let payload = g.bytes(0..1024);
        let rec = Record::new(RecordType::Data, payload);
        let (back, used) = Record::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec.clone());
        assert_eq!(used, rec.encode().len());
    });
}

/// Handshake agreement across many seeds (moderate key size, so generate
/// once and vary the transcript randomness).
#[test]
fn handshakes_agree_for_many_seeds() {
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(61));
    for seed in 0..12u64 {
        let mut rng = Rng64::new(1000 + seed);
        // TLS shape.
        let mut engine = CrtEngine::new(key.clone_secret(), true);
        let (client, bundle) = wireproto::tls::Client::start(key.public_key(), &mut rng).unwrap();
        let (sk, reply) = wireproto::tls::accept(&mut engine, &bundle, &mut rng).unwrap();
        assert_eq!(client.finish(&reply).unwrap(), sk, "tls seed {seed}");
        // SSH shape.
        let mut engine = CrtEngine::new(key.clone_secret(), false);
        let (client, bundle) = wireproto::ssh::Client::start(key.public_key(), &mut rng);
        let (sk, reply) = wireproto::ssh::accept(&mut engine, &bundle, &mut rng).unwrap();
        assert_eq!(client.finish(&reply).unwrap(), sk, "ssh seed {seed}");
    }
}

/// A full application exchange over a handshake-derived channel.
#[test]
fn end_to_end_session_over_tls_handshake() {
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(62));
    let mut engine = CrtEngine::new(key.clone_secret(), true).with_blinding(77);
    let mut rng = Rng64::new(63);
    let (client, bundle) = wireproto::tls::Client::start(key.public_key(), &mut rng).unwrap();
    let (server_keys, reply) = wireproto::tls::accept(&mut engine, &bundle, &mut rng).unwrap();
    let client_keys = client.finish(&reply).unwrap();

    let mut c = SecureChannel::new(client_keys, Role::Client);
    let mut s = SecureChannel::new(server_keys, Role::Server);
    for msg in [&b"GET / HTTP/1.0"[..], b"", b"0123456789".repeat(100).as_slice()] {
        let wire = c.seal(msg);
        let (back, _) = s.open(&wire).unwrap();
        assert_eq!(back, msg);
        let resp = s.seal(b"200 OK");
        let (back, _) = c.open(&resp).unwrap();
        assert_eq!(back, b"200 OK");
    }
}

/// Handshake acceptors must never panic on corrupted bundles — a valid
/// bundle with random mutations either handshakes or errors.
#[test]
fn corrupted_handshake_bundles_never_panic() {
    let key = RsaPrivateKey::generate(512, &mut Rng64::new(71));
    propcheck::cases(96, |g| {
        let flip_at = g.usize_in(0..160);
        let bit = g.u8() % 8;
        let truncate_to = g.usize_in(0..160);
        let mut rng = Rng64::new(72);

        // TLS bundle.
        let (_c, mut bundle) = wireproto::tls::Client::start(key.public_key(), &mut rng).unwrap();
        let mut engine = CrtEngine::new(key.clone_secret(), true);
        if !bundle.is_empty() {
            let i = flip_at % bundle.len();
            bundle[i] ^= 1 << bit;
        }
        let _ = wireproto::tls::accept(&mut engine, &bundle, &mut rng);
        let shorter = &bundle[..truncate_to.min(bundle.len())];
        let _ = wireproto::tls::accept(&mut engine, shorter, &mut rng);

        // SSH bundle.
        let (_c, mut bundle) = wireproto::ssh::Client::start(key.public_key(), &mut rng);
        if !bundle.is_empty() {
            let i = flip_at % bundle.len();
            bundle[i] ^= 1 << bit;
        }
        let _ = wireproto::ssh::accept(&mut engine, &bundle, &mut rng);
        let shorter = &bundle[..truncate_to.min(bundle.len())];
        let _ = wireproto::ssh::accept(&mut engine, shorter, &mut rng);
    });
}
