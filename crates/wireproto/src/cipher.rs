//! Toy symmetric primitives for session traffic: a keyed xorshift stream
//! cipher, an FNV-style MAC, and the key-derivation step that turns a
//! handshake secret into directional session keys.
//!
//! These are simulation stand-ins (see the crate docs) — their job is to
//! make session traffic unique, key-dependent, and useless to the memory
//! scanner, with the performance profile of a cheap stream cipher.

/// A keyed keystream generator (xorshift128+ seeded from key material).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCipher {
    s0: u64,
    s1: u64,
    /// Keystream bytes buffered from the current 8-byte block.
    buf: [u8; 8],
    buf_used: usize,
}

impl StreamCipher {
    /// Creates a cipher from 16 bytes of key and an 8-byte nonce.
    #[must_use]
    pub fn new(key: &[u8; 16], nonce: u64) -> Self {
        let k0 = u64::from_le_bytes(key[..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..].try_into().expect("8 bytes"));
        let mut c = Self {
            s0: k0 ^ nonce.rotate_left(32) | 1,
            s1: k1 ^ 0x9E37_79B9_7F4A_7C15 ^ nonce,
            buf: [0; 8],
            buf_used: 8,
        };
        // Discard the first blocks so weak seeds diffuse.
        for _ in 0..4 {
            c.next_block();
        }
        c
    }

    fn next_block(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    fn next_byte(&mut self) -> u8 {
        if self.buf_used == 8 {
            self.buf = self.next_block().to_le_bytes();
            self.buf_used = 0;
        }
        let b = self.buf[self.buf_used];
        self.buf_used += 1;
        b
    }

    /// XORs the keystream into `data` (encrypt and decrypt are identical).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

/// Hashes arbitrary bytes down to a 16-byte [`StreamCipher`] key.
///
/// The same four-lane sponge as [`SessionKeys::derive`], without the nonce
/// folding: deterministic, every output bit depends on every input byte.
/// Used by key shielding to turn a large random prekey into the cipher key
/// that encrypts key material at rest.
#[must_use]
pub fn digest16(data: &[u8]) -> [u8; 16] {
    let mut lanes = [
        0x6a09_e667_f3bc_c908u64,
        0xbb67_ae85_84ca_a73b,
        0x3c6e_f372_fe94_f82b,
        0xa54f_f53a_5f1d_36f1,
    ];
    for (i, &b) in data.iter().enumerate() {
        let lane = i % 4;
        lanes[lane] ^= u64::from(b) << ((i / 4 % 8) * 8);
        lanes[lane] = lanes[lane].rotate_left(13).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    // Fold in the length so prefixes of a buffer hash differently.
    lanes[0] ^= data.len() as u64;
    for _ in 0..2 {
        for i in 0..4 {
            lanes[i] = lanes[i]
                .wrapping_add(lanes[(i + 1) % 4].rotate_left(29))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    for lane in &mut lanes {
        *lane ^= *lane >> 29;
        *lane = lane.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&(lanes[0] ^ lanes[2]).to_le_bytes());
    out[8..].copy_from_slice(&(lanes[1] ^ lanes[3]).to_le_bytes());
    out
}

/// A 64-bit FNV-1a-style keyed tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mac {
    key: u64,
}

impl Mac {
    /// Creates a MAC from 8 key bytes.
    #[must_use]
    pub fn new(key: &[u8; 8]) -> Self {
        Self {
            key: u64::from_le_bytes(*key),
        }
    }

    /// Computes the tag over `data`.
    #[must_use]
    pub fn tag(&self, data: &[u8]) -> [u8; 8] {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.key;
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Final mixing so length-extension-ish tweaks change every bit.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h.to_le_bytes()
    }

    /// Verifies a tag without early exit.
    #[must_use]
    pub fn verify(&self, data: &[u8], tag: &[u8]) -> bool {
        if tag.len() != 8 {
            return false;
        }
        let expect = self.tag(data);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// Directional session keys derived from a handshake secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    session_id: u64,
    client_key: [u8; 16],
    server_key: [u8; 16],
    mac_key: [u8; 8],
}

impl SessionKeys {
    /// Derives keys from the shared secret and both parties' nonces —
    /// the master-secret expansion step of the handshake.
    #[must_use]
    pub fn derive(secret: &[u8], client_nonce: u64, server_nonce: u64) -> Self {
        // Simple sponge: fold the secret into four lanes with distinct tags.
        let mut lanes = [0x6a09_e667_f3bc_c908u64, 0xbb67_ae85_84ca_a73b, 0x3c6e_f372_fe94_f82b, 0xa54f_f53a_5f1d_36f1];
        for (i, &b) in secret.iter().enumerate() {
            let lane = i % 4;
            lanes[lane] ^= u64::from(b) << ((i / 4 % 8) * 8);
            lanes[lane] = lanes[lane].rotate_left(13).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        lanes[0] ^= client_nonce;
        lanes[1] ^= server_nonce;
        lanes[2] ^= client_nonce.rotate_left(17);
        lanes[3] ^= server_nonce.rotate_left(41);
        // Cross-lane diffusion: every output lane depends on every input.
        for _ in 0..2 {
            for i in 0..4 {
                lanes[i] = lanes[i]
                    .wrapping_add(lanes[(i + 1) % 4].rotate_left(29))
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        for lane in &mut lanes {
            *lane ^= *lane >> 29;
            *lane = lane.wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        let mut client_key = [0u8; 16];
        client_key[..8].copy_from_slice(&lanes[0].to_le_bytes());
        client_key[8..].copy_from_slice(&lanes[1].to_le_bytes());
        let mut server_key = [0u8; 16];
        server_key[..8].copy_from_slice(&lanes[1].rotate_left(7).to_le_bytes());
        server_key[8..].copy_from_slice(&lanes[2].to_le_bytes());
        Self {
            session_id: lanes[0] ^ lanes[3],
            client_key,
            server_key,
            mac_key: lanes[3].to_le_bytes(),
        }
    }

    /// A session identifier both sides derive identically.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Cipher for client→server traffic.
    #[must_use]
    pub fn client_cipher(&self, nonce: u64) -> StreamCipher {
        StreamCipher::new(&self.client_key, nonce)
    }

    /// Cipher for server→client traffic.
    #[must_use]
    pub fn server_cipher(&self, nonce: u64) -> StreamCipher {
        StreamCipher::new(&self.server_key, nonce)
    }

    /// The record MAC.
    #[must_use]
    pub fn mac(&self) -> Mac {
        Mac::new(&self.mac_key)
    }

    /// The Finished-message check value proving both sides derived the same
    /// keys.
    #[must_use]
    pub fn finished_tag(&self, role: &'static str) -> [u8; 8] {
        self.mac().tag(role.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cipher_round_trips() {
        let key = [7u8; 16];
        let mut enc = StreamCipher::new(&key, 42);
        let mut dec = StreamCipher::new(&key, 42);
        let mut data = b"attack at dawn, bring the usb stick".to_vec();
        let orig = data.clone();
        enc.apply(&mut data);
        assert_ne!(data, orig, "ciphertext differs from plaintext");
        dec.apply(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [9u8; 16];
        let mut a = StreamCipher::new(&key, 1);
        let mut b = StreamCipher::new(&key, 2);
        let mut da = vec![0u8; 32];
        let mut db = vec![0u8; 32];
        a.apply(&mut da);
        b.apply(&mut db);
        assert_ne!(da, db);
    }

    #[test]
    fn keystream_is_key_dependent() {
        let mut a = StreamCipher::new(&[1u8; 16], 0);
        let mut b = StreamCipher::new(&[2u8; 16], 0);
        let mut da = vec![0u8; 32];
        let mut db = vec![0u8; 32];
        a.apply(&mut da);
        b.apply(&mut db);
        assert_ne!(da, db);
    }

    #[test]
    fn digest16_is_deterministic_and_sensitive() {
        let a = digest16(b"prekey material");
        assert_eq!(a, digest16(b"prekey material"));
        assert_ne!(a, digest16(b"prekey materiam"), "content sensitivity");
        assert_ne!(a, digest16(b"prekey materia"), "length sensitivity");
        assert_ne!(digest16(b""), digest16(b"\0"), "zero byte vs empty");
        // Large inputs (the 16 KiB prekey case) hash without truncation
        // effects: flipping one bit anywhere changes the digest.
        let big = vec![0xA5u8; 16 * 1024];
        let mut flipped = big.clone();
        flipped[9000] ^= 0x01;
        assert_ne!(digest16(&big), digest16(&flipped));
    }

    #[test]
    fn mac_accepts_valid_rejects_tampered() {
        let mac = Mac::new(&[3u8; 8]);
        let tag = mac.tag(b"record payload");
        assert!(mac.verify(b"record payload", &tag));
        assert!(!mac.verify(b"record payloae", &tag));
        assert!(!mac.verify(b"record payload", &[0u8; 8]));
        assert!(!mac.verify(b"record payload", &tag[..4]));
        // A different key rejects.
        assert!(!Mac::new(&[4u8; 8]).verify(b"record payload", &tag));
    }

    #[test]
    fn derive_is_deterministic_and_sensitive() {
        let a = SessionKeys::derive(b"premaster secret bytes", 1, 2);
        let b = SessionKeys::derive(b"premaster secret bytes", 1, 2);
        assert_eq!(a, b);
        let c = SessionKeys::derive(b"premaster secret bytez", 1, 2);
        assert_ne!(a.session_id(), c.session_id());
        let d = SessionKeys::derive(b"premaster secret bytes", 9, 2);
        assert_ne!(a.session_id(), d.session_id());
    }

    #[test]
    fn directional_keys_differ() {
        let k = SessionKeys::derive(b"secret", 1, 2);
        let mut c = k.client_cipher(0);
        let mut s = k.server_cipher(0);
        let mut dc = vec![0u8; 16];
        let mut ds = vec![0u8; 16];
        c.apply(&mut dc);
        s.apply(&mut ds);
        assert_ne!(dc, ds);
    }

    #[test]
    fn finished_tags_differ_by_role() {
        let k = SessionKeys::derive(b"secret", 1, 2);
        assert_ne!(k.finished_tag("client"), k.finished_tag("server"));
        assert_eq!(k.finished_tag("client"), k.finished_tag("client"));
    }
}
