//! Simplified wire protocols over the reproduction's RSA stack.
//!
//! The paper's two victims use their private keys differently:
//!
//! * **Apache + mod_ssl (TLS-RSA)** — the client encrypts a premaster
//!   secret to the server's public key; the server's private operation is a
//!   *decryption* ([`tls`]).
//! * **OpenSSH** — the host key *signs* the key-exchange hash; the session
//!   secret itself never touches the RSA key ([`ssh`]).
//!
//! Both shapes are implemented end-to-end here: length-prefixed record
//! framing, handshakes driving real RSA-CRT operations through
//! [`rsa_repro::CrtEngine`], a key-derivation step, and a [`SecureChannel`]
//! that encrypts and authenticates application data with a toy stream
//! cipher and MAC.
//!
//! **Security note:** the symmetric primitives are deliberately simple
//! simulation stand-ins (xorshift keystream, FNV-style MAC). They exist so
//! payload bytes move through the simulated machine the way SSL records
//! would — unique per session, useless to the scanner — not to resist real
//! cryptanalysis. The RSA layer underneath is the real algorithm.
//!
//! # Examples
//!
//! ```
//! use rsa_repro::{CrtEngine, RsaPrivateKey};
//! use simrng::Rng64;
//! use wireproto::tls;
//!
//! let key = RsaPrivateKey::generate(512, &mut Rng64::new(1));
//! let mut server_engine = CrtEngine::new(key.clone_secret(), true);
//!
//! let mut rng = Rng64::new(2);
//! let (client, hello) = tls::Client::start(key.public_key(), &mut rng)?;
//! let (server_session, reply) = tls::accept(&mut server_engine, &hello, &mut rng)?;
//! let client_session = client.finish(&reply)?;
//! assert_eq!(client_session.session_id(), server_session.session_id());
//! # Ok::<(), wireproto::ProtoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod cipher;
mod record;
pub mod ssh;
pub mod tls;

pub use channel::{Role, SecureChannel};
pub use cipher::{digest16, Mac, SessionKeys, StreamCipher};
pub use record::{Record, RecordType, MAX_RECORD_PAYLOAD};

use core::fmt;

/// Protocol failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A record could not be parsed.
    Malformed(&'static str),
    /// A record of an unexpected type arrived.
    UnexpectedRecord {
        /// Record type expected next.
        expected: RecordType,
        /// Record type received.
        found: RecordType,
    },
    /// The RSA layer failed (bad padding, oversized input, …).
    Rsa(rsa_repro::RsaError),
    /// A signature or MAC failed verification.
    AuthFailed(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed record: {what}"),
            Self::UnexpectedRecord { expected, found } => {
                write!(f, "expected {expected:?} record, found {found:?}")
            }
            Self::Rsa(e) => write!(f, "rsa failure: {e}"),
            Self::AuthFailed(what) => write!(f, "authentication failed: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rsa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rsa_repro::RsaError> for ProtoError {
    fn from(e: rsa_repro::RsaError) -> Self {
        Self::Rsa(e)
    }
}
