//! The TLS-RSA handshake shape (RSA key transport), as mod_ssl used it:
//! the client encrypts a premaster secret to the server's public key; the
//! server's private key *decrypts*.
//!
//! ```text
//! client                                server
//!   | -- ClientHello{nonce} ------------> |
//!   | <- ServerHello{nonce} +             |
//!   |    KeyExchange{Enc_pk(premaster)}   |  (client builds these...)
//!   | -- KeyExchange ------------------>  |  decrypt with CRT private op
//!   | <- Finished{server tag} ----------- |
//! ```
//!
//! For simulation convenience the exchange is collapsed into two bundles of
//! records: the client's opening bundle and the server's reply.

use crate::cipher::SessionKeys;
use crate::record::{Record, RecordType};
use crate::ProtoError;
use rsa_repro::{CrtEngine, RsaPublicKey};
use simrng::Rng64;

/// Premaster secret length (TLS used 48 bytes; shrunk automatically for the
/// tiny keys unit tests use).
const PREMASTER_LEN: usize = 48;

/// Client-side handshake state between sending the opening bundle and
/// receiving the server's reply.
#[derive(Debug)]
pub struct Client {
    premaster: Vec<u8>,
    client_nonce: u64,
}

impl Client {
    /// Builds the opening bundle: ClientHello + KeyExchange carrying the
    /// encrypted premaster.
    ///
    /// # Errors
    ///
    /// Propagates RSA encryption failures.
    pub fn start(server_pub: RsaPublicKey, rng: &mut Rng64) -> Result<(Self, Vec<u8>), ProtoError> {
        let client_nonce = rng.next_u64();
        let max = server_pub.modulus_len().saturating_sub(11).max(1);
        let premaster = rng.gen_bytes(PREMASTER_LEN.min(max));
        let encrypted = server_pub.encrypt_pkcs1(&premaster, rng)?;

        let mut bundle = Record::new(RecordType::ClientHello, client_nonce.to_be_bytes().to_vec())
            .encode();
        bundle.extend(Record::new(RecordType::KeyExchange, encrypted).encode());
        Ok((
            Self {
                premaster,
                client_nonce,
            },
            bundle,
        ))
    }

    /// Processes the server's reply bundle, deriving the session keys and
    /// verifying the server's Finished tag.
    ///
    /// # Errors
    ///
    /// Fails on malformed records or a Finished mismatch (key confusion).
    pub fn finish(self, reply: &[u8]) -> Result<SessionKeys, ProtoError> {
        let (hello, used) = Record::expect(reply, RecordType::ServerHello)?;
        if hello.payload.len() != 8 {
            return Err(ProtoError::Malformed("server nonce must be 8 bytes"));
        }
        let server_nonce = u64::from_be_bytes(hello.payload[..8].try_into().expect("checked"));
        let (finished, _) = Record::expect(&reply[used..], RecordType::Finished)?;

        let keys = SessionKeys::derive(&self.premaster, self.client_nonce, server_nonce);
        if !keys
            .mac()
            .verify(b"server", &finished.payload)
        {
            return Err(ProtoError::AuthFailed("server Finished tag"));
        }
        Ok(keys)
    }
}

/// Server side: consumes the client's bundle, performs the CRT decryption,
/// and produces the session keys plus the reply bundle.
///
/// # Errors
///
/// Fails on malformed records or RSA/padding errors (e.g. a ciphertext
/// encrypted to the wrong server).
pub fn accept(
    engine: &mut CrtEngine,
    bundle: &[u8],
    rng: &mut Rng64,
) -> Result<(SessionKeys, Vec<u8>), ProtoError> {
    let (hello, used) = Record::expect(bundle, RecordType::ClientHello)?;
    if hello.payload.len() != 8 {
        return Err(ProtoError::Malformed("client nonce must be 8 bytes"));
    }
    let client_nonce = u64::from_be_bytes(hello.payload[..8].try_into().expect("checked"));
    let (kx, _) = Record::expect(&bundle[used..], RecordType::KeyExchange)?;

    // The private operation of the whole protocol: recover the premaster.
    let k = engine.key().modulus_len();
    let m = engine.private_op(&bignum::BigUint::from_be_bytes(&kx.payload))?;
    let premaster = rsa_repro::unpad_encrypt_block(&m.to_be_bytes_padded(k))?;

    let server_nonce = rng.next_u64();
    let keys = SessionKeys::derive(&premaster, client_nonce, server_nonce);

    let mut reply =
        Record::new(RecordType::ServerHello, server_nonce.to_be_bytes().to_vec()).encode();
    reply.extend(Record::new(RecordType::Finished, keys.finished_tag("server").to_vec()).encode());
    Ok((keys, reply))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsa_repro::RsaPrivateKey;

    fn setup() -> (RsaPrivateKey, CrtEngine, Rng64) {
        let key = RsaPrivateKey::generate(512, &mut Rng64::new(41));
        let engine = CrtEngine::new(key.clone_secret(), true);
        (key, engine, Rng64::new(42))
    }

    #[test]
    fn full_handshake_agrees_on_keys() {
        let (key, mut engine, mut rng) = setup();
        let (client, bundle) = Client::start(key.public_key(), &mut rng).unwrap();
        let (server_keys, reply) = accept(&mut engine, &bundle, &mut rng).unwrap();
        let client_keys = client.finish(&reply).unwrap();
        assert_eq!(client_keys, server_keys);
        assert_eq!(engine.ops(), 1, "exactly one private op per handshake");
    }

    #[test]
    fn wrong_server_key_fails_cleanly() {
        let (key, _, mut rng) = setup();
        let other = RsaPrivateKey::generate(512, &mut Rng64::new(43));
        let mut wrong_engine = CrtEngine::new(other, true);
        let (_, bundle) = Client::start(key.public_key(), &mut rng).unwrap();
        // Decrypting with the wrong key must fail padding, not mis-derive.
        assert!(accept(&mut wrong_engine, &bundle, &mut rng).is_err());
    }

    #[test]
    fn tampered_finished_is_rejected() {
        let (key, mut engine, mut rng) = setup();
        let (client, bundle) = Client::start(key.public_key(), &mut rng).unwrap();
        let (_, mut reply) = accept(&mut engine, &bundle, &mut rng).unwrap();
        let n = reply.len();
        reply[n - 1] ^= 1;
        assert!(matches!(
            client.finish(&reply),
            Err(ProtoError::AuthFailed(_))
        ));
    }

    #[test]
    fn malformed_bundles_are_rejected() {
        let (_, mut engine, mut rng) = setup();
        assert!(accept(&mut engine, &[], &mut rng).is_err());
        let bad = Record::new(RecordType::Data, vec![0; 8]).encode();
        assert!(accept(&mut engine, &bad, &mut rng).is_err());
        // Correct first record, truncated second.
        let partial = Record::new(RecordType::ClientHello, vec![0; 8]).encode();
        assert!(accept(&mut engine, &partial, &mut rng).is_err());
    }

    #[test]
    fn sessions_have_unique_ids() {
        let (key, mut engine, mut rng) = setup();
        let mut ids = std::collections::HashSet::new();
        for _ in 0..8 {
            let (client, bundle) = Client::start(key.public_key(), &mut rng).unwrap();
            let (_, reply) = accept(&mut engine, &bundle, &mut rng).unwrap();
            let keys = client.finish(&reply).unwrap();
            assert!(ids.insert(keys.session_id()), "session id repeated");
        }
    }
}
