//! Length-prefixed record framing: `type(1) || len(u32 BE) || payload`.

use crate::ProtoError;

/// Maximum payload a single record may carry (matches SSL's 16 KB records
/// plus slack for handshake blobs).
pub const MAX_RECORD_PAYLOAD: usize = 64 * 1024;

/// Wire record types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordType {
    /// Client's opening handshake message.
    ClientHello = 1,
    /// Server's handshake reply.
    ServerHello = 2,
    /// Key-exchange material (encrypted premaster / signed exchange hash).
    KeyExchange = 3,
    /// Handshake completion check.
    Finished = 4,
    /// Encrypted application data.
    Data = 5,
}

impl RecordType {
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::ClientHello),
            2 => Some(Self::ServerHello),
            3 => Some(Self::KeyExchange),
            4 => Some(Self::Finished),
            5 => Some(Self::Data),
            _ => None,
        }
    }
}

/// One framed protocol record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's type tag.
    pub kind: RecordType,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl Record {
    /// Builds a record.
    ///
    /// # Panics
    ///
    /// Panics when the payload exceeds [`MAX_RECORD_PAYLOAD`].
    #[must_use]
    pub fn new(kind: RecordType, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() <= MAX_RECORD_PAYLOAD,
            "record payload too large"
        );
        Self { kind, payload }
    }

    /// Serializes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.payload.len());
        out.push(self.kind as u8);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses one record from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Fails with [`ProtoError::Malformed`] on truncation, unknown types, or
    /// oversized declared lengths.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), ProtoError> {
        if bytes.len() < 5 {
            return Err(ProtoError::Malformed("record header truncated"));
        }
        let kind =
            RecordType::from_byte(bytes[0]).ok_or(ProtoError::Malformed("unknown record type"))?;
        let len = u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
        if len > MAX_RECORD_PAYLOAD {
            return Err(ProtoError::Malformed("declared length too large"));
        }
        if bytes.len() < 5 + len {
            return Err(ProtoError::Malformed("record payload truncated"));
        }
        Ok((
            Self {
                kind,
                payload: bytes[5..5 + len].to_vec(),
            },
            5 + len,
        ))
    }

    /// Decodes and checks the type tag in one step.
    ///
    /// # Errors
    ///
    /// Adds [`ProtoError::UnexpectedRecord`] to [`Self::decode`]'s failures.
    pub fn expect(bytes: &[u8], kind: RecordType) -> Result<(Self, usize), ProtoError> {
        let (rec, used) = Self::decode(bytes)?;
        if rec.kind != kind {
            return Err(ProtoError::UnexpectedRecord {
                expected: kind,
                found: rec.kind,
            });
        }
        Ok((rec, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        for kind in [
            RecordType::ClientHello,
            RecordType::ServerHello,
            RecordType::KeyExchange,
            RecordType::Finished,
            RecordType::Data,
        ] {
            let rec = Record::new(kind, vec![1, 2, 3, 4, 5]);
            let wire = rec.encode();
            let (back, used) = Record::decode(&wire).unwrap();
            assert_eq!(back, rec);
            assert_eq!(used, wire.len());
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let rec = Record::new(RecordType::Finished, vec![]);
        let wire = rec.encode();
        assert_eq!(wire.len(), 5);
        let (back, _) = Record::decode(&wire).unwrap();
        assert!(back.payload.is_empty());
    }

    #[test]
    fn decode_consumes_only_one_record() {
        let a = Record::new(RecordType::ClientHello, vec![9; 7]).encode();
        let b = Record::new(RecordType::Data, vec![8; 3]).encode();
        let stream = [a.clone(), b].concat();
        let (first, used) = Record::decode(&stream).unwrap();
        assert_eq!(first.kind, RecordType::ClientHello);
        assert_eq!(used, a.len());
        let (second, _) = Record::decode(&stream[used..]).unwrap();
        assert_eq!(second.kind, RecordType::Data);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[1, 0, 0]).is_err()); // truncated header
        assert!(Record::decode(&[99, 0, 0, 0, 0]).is_err()); // unknown type
        // Declared length beyond buffer.
        assert!(Record::decode(&[1, 0, 0, 0, 10, 1, 2]).is_err());
        // Declared length beyond the cap.
        let mut huge = vec![1u8];
        huge.extend_from_slice(&(MAX_RECORD_PAYLOAD as u32 + 1).to_be_bytes());
        assert!(Record::decode(&huge).is_err());
    }

    #[test]
    fn expect_enforces_type() {
        let wire = Record::new(RecordType::Data, vec![1]).encode();
        assert!(Record::expect(&wire, RecordType::Data).is_ok());
        let err = Record::expect(&wire, RecordType::Finished).unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedRecord { .. }));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_payload_panics_at_construction() {
        let _ = Record::new(RecordType::Data, vec![0; MAX_RECORD_PAYLOAD + 1]);
    }
}
