//! [`SecureChannel`] — encrypted, MAC'd application data over established
//! session keys.

use crate::cipher::{SessionKeys, StreamCipher};
use crate::record::{Record, RecordType};
use crate::ProtoError;

/// Which side of the channel this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The connecting client.
    Client,
    /// The accepting server.
    Server,
}

/// One endpoint of an established session: seals outgoing records and opens
/// incoming ones.
#[derive(Debug)]
pub struct SecureChannel {
    keys: SessionKeys,
    role: Role,
    send_seq: u64,
    recv_seq: u64,
    send_cipher: Option<StreamCipher>,
    recv_cipher: Option<StreamCipher>,
}

impl SecureChannel {
    /// Builds an endpoint from derived keys.
    #[must_use]
    pub fn new(keys: SessionKeys, role: Role) -> Self {
        Self {
            keys,
            role,
            send_seq: 0,
            recv_seq: 0,
            send_cipher: None,
            recv_cipher: None,
        }
    }

    fn cipher_for(&self, dir_role: Role, seq: u64) -> StreamCipher {
        match dir_role {
            Role::Client => self.keys.client_cipher(seq),
            Role::Server => self.keys.server_cipher(seq),
        }
    }

    /// Encrypts and frames one application record:
    /// `Data{ ciphertext || tag }`.
    #[must_use]
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut body = plaintext.to_vec();
        let mut cipher = self.cipher_for(self.role, self.send_seq);
        cipher.apply(&mut body);
        // MAC covers sequence number and ciphertext: replay/reorder detection.
        let mut mac_input = self.send_seq.to_be_bytes().to_vec();
        mac_input.extend_from_slice(&body);
        let tag = self.keys.mac().tag(&mac_input);
        body.extend_from_slice(&tag);
        self.send_seq += 1;
        self.send_cipher = None;
        Record::new(RecordType::Data, body).encode()
    }

    /// Opens one sealed record, returning the plaintext and bytes consumed.
    ///
    /// # Errors
    ///
    /// Fails on framing errors, truncated tags, or MAC mismatch (tampering,
    /// replay, reordering).
    pub fn open(&mut self, wire: &[u8]) -> Result<(Vec<u8>, usize), ProtoError> {
        let (rec, used) = Record::expect(wire, RecordType::Data)?;
        if rec.payload.len() < 8 {
            return Err(ProtoError::Malformed("sealed record too short"));
        }
        let (body, tag) = rec.payload.split_at(rec.payload.len() - 8);
        let mut mac_input = self.recv_seq.to_be_bytes().to_vec();
        mac_input.extend_from_slice(body);
        if !self.keys.mac().verify(&mac_input, tag) {
            return Err(ProtoError::AuthFailed("record MAC"));
        }
        let peer = match self.role {
            Role::Client => Role::Server,
            Role::Server => Role::Client,
        };
        let mut plain = body.to_vec();
        let mut cipher = self.cipher_for(peer, self.recv_seq);
        cipher.apply(&mut plain);
        self.recv_seq += 1;
        self.recv_cipher = None;
        Ok((plain, used))
    }

    /// Records sent so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.send_seq
    }

    /// Records received so far.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.recv_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let keys = SessionKeys::derive(b"shared secret from a handshake", 11, 22);
        (
            SecureChannel::new(keys.clone(), Role::Client),
            SecureChannel::new(keys, Role::Server),
        )
    }

    #[test]
    fn bidirectional_round_trip() {
        let (mut client, mut server) = pair();
        let wire = client.seal(b"GET /secret HTTP/1.0");
        let (plain, _) = server.open(&wire).unwrap();
        assert_eq!(plain, b"GET /secret HTTP/1.0");

        let wire = server.seal(b"200 OK: here you go");
        let (plain, _) = client.open(&wire).unwrap();
        assert_eq!(plain, b"200 OK: here you go");
        assert_eq!(client.sent(), 1);
        assert_eq!(client.received(), 1);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_across_records() {
        let (mut client, _) = pair();
        let a = client.seal(b"same payload bytes");
        let b = client.seal(b"same payload bytes");
        assert_ne!(a, b, "per-record nonces must differ");
        assert!(!a.windows(12).any(|w| w == b"same payload"), "no plaintext on the wire");
    }

    #[test]
    fn tampering_is_detected() {
        let (mut client, mut server) = pair();
        let mut wire = client.seal(b"transfer 100 to alice");
        wire[8] ^= 1;
        assert!(matches!(server.open(&wire), Err(ProtoError::AuthFailed(_))));
    }

    #[test]
    fn replay_is_detected() {
        let (mut client, mut server) = pair();
        let wire = client.seal(b"one-shot command");
        server.open(&wire).unwrap();
        // Replaying the same record fails: the receive sequence advanced.
        assert!(server.open(&wire).is_err());
    }

    #[test]
    fn reorder_is_detected() {
        let (mut client, mut server) = pair();
        let first = client.seal(b"first");
        let second = client.seal(b"second");
        assert!(server.open(&second).is_err(), "out-of-order record rejected");
        // In-order still works afterwards.
        server.open(&first).unwrap();
        let (p, _) = server.open(&second).unwrap();
        assert_eq!(p, b"second");
    }

    #[test]
    fn cross_session_records_do_not_open() {
        let (mut client_a, _) = pair();
        let keys_b = SessionKeys::derive(b"a different handshake", 3, 4);
        let mut server_b = SecureChannel::new(keys_b, Role::Server);
        let wire = client_a.seal(b"meant for session A");
        assert!(server_b.open(&wire).is_err());
    }

    #[test]
    fn empty_payload_round_trips() {
        let (mut client, mut server) = pair();
        let wire = client.seal(b"");
        let (plain, _) = server.open(&wire).unwrap();
        assert!(plain.is_empty());
    }
}
