//! The SSH handshake shape: the host key *signs* the key-exchange hash.
//!
//! ```text
//! client                                server
//!   | -- KexInit{client nonce + share} -> |
//!   | <- KexReply{server nonce + share,   |
//!   |      Sign_sk(exchange hash)} ------ |
//! ```
//!
//! The shared secret comes from the (toy) key-agreement shares; the host
//! key's only job — exactly as in real SSH — is to authenticate the
//! exchange. Compromising the host key lets an attacker impersonate the
//! server, which the `stolen_key_forges_a_server` test demonstrates.

use crate::cipher::SessionKeys;
use crate::record::{Record, RecordType};
use crate::ProtoError;
use rsa_repro::{CrtEngine, RsaPublicKey};
use simrng::Rng64;

/// Computes the exchange hash both sides derive from the public handshake
/// transcript (a cheap 32-byte sponge over the nonces and shares),
/// truncated to what a signature block of a `key_len`-byte modulus can
/// carry — tiny test keys still get a meaningful digest.
fn exchange_hash(client_nonce: u64, server_nonce: u64, shared: u64, key_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    let mut acc = 0x243F_6A88_85A3_08D3u64;
    for (i, v) in [client_nonce, server_nonce, shared, 0x5353_4821].iter().enumerate() {
        acc ^= v.rotate_left((i * 13) as u32);
        acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        acc ^= acc >> 31;
        out.extend_from_slice(&acc.to_be_bytes());
    }
    out.truncate(32.min(key_len.saturating_sub(11)).max(4));
    out
}

/// Toy commutative key agreement: `share = g·secret` and
/// `shared = peer_share·secret` over wrapping u64 multiplication by a shared
/// odd generator. Not secure — the point is that the host RSA key is *not*
/// the source of the session secret, matching SSH's structure.
const GENERATOR: u64 = 0x9E37_79B9_7F4A_7C15 | 1;

fn share_of(secret: u64) -> u64 {
    GENERATOR.wrapping_mul(secret | 1)
}

fn agree(peer_share: u64, secret: u64) -> u64 {
    peer_share.wrapping_mul(secret | 1)
}

/// Client state between KexInit and KexReply.
#[derive(Debug)]
pub struct Client {
    secret: u64,
    client_nonce: u64,
    host_key: RsaPublicKey,
}

impl Client {
    /// Builds the KexInit bundle.
    #[must_use]
    pub fn start(host_key: RsaPublicKey, rng: &mut Rng64) -> (Self, Vec<u8>) {
        let secret = rng.next_u64();
        let client_nonce = rng.next_u64();
        let mut payload = client_nonce.to_be_bytes().to_vec();
        payload.extend_from_slice(&share_of(secret).to_be_bytes());
        let bundle = Record::new(RecordType::ClientHello, payload).encode();
        (
            Self {
                secret,
                client_nonce,
                host_key,
            },
            bundle,
        )
    }

    /// Processes the server's KexReply: verifies the host signature over the
    /// exchange hash, then derives session keys.
    ///
    /// # Errors
    ///
    /// Fails on malformed records or a bad host signature (impersonation).
    pub fn finish(self, reply: &[u8]) -> Result<SessionKeys, ProtoError> {
        let (hello, used) = Record::expect(reply, RecordType::ServerHello)?;
        if hello.payload.len() != 16 {
            return Err(ProtoError::Malformed("kex reply needs nonce + share"));
        }
        let server_nonce = u64::from_be_bytes(hello.payload[..8].try_into().expect("checked"));
        let server_share = u64::from_be_bytes(hello.payload[8..16].try_into().expect("checked"));
        let (sig, _) = Record::expect(&reply[used..], RecordType::KeyExchange)?;

        let shared = agree(server_share, self.secret);
        let hash = exchange_hash(
            self.client_nonce,
            server_nonce,
            shared,
            self.host_key.modulus_len(),
        );
        if !self.host_key.verify_pkcs1(&hash, &sig.payload) {
            return Err(ProtoError::AuthFailed("host key signature"));
        }
        Ok(SessionKeys::derive(
            &shared.to_be_bytes(),
            self.client_nonce,
            server_nonce,
        ))
    }
}

/// Server side: consumes KexInit, signs the exchange hash with the host
/// key (the CRT private operation), and returns keys + the KexReply bundle.
///
/// # Errors
///
/// Fails on malformed records or RSA errors.
pub fn accept(
    engine: &mut CrtEngine,
    bundle: &[u8],
    rng: &mut Rng64,
) -> Result<(SessionKeys, Vec<u8>), ProtoError> {
    let (init, _) = Record::expect(bundle, RecordType::ClientHello)?;
    if init.payload.len() != 16 {
        return Err(ProtoError::Malformed("kex init needs nonce + share"));
    }
    let client_nonce = u64::from_be_bytes(init.payload[..8].try_into().expect("checked"));
    let client_share = u64::from_be_bytes(init.payload[8..16].try_into().expect("checked"));

    let secret = rng.next_u64();
    let server_nonce = rng.next_u64();
    let shared = agree(client_share, secret);
    let hash = exchange_hash(
        client_nonce,
        server_nonce,
        shared,
        engine.key().modulus_len(),
    );

    // The private operation: sign the exchange hash. (Padding + CRT through
    // the engine so Montgomery caching semantics apply.)
    let k = engine.key().modulus_len();
    let em = sign_pad(&hash, k)?;
    let s = engine.private_op(&bignum::BigUint::from_be_bytes(&em))?;
    let signature = s.to_be_bytes_padded(k);

    let mut payload = server_nonce.to_be_bytes().to_vec();
    payload.extend_from_slice(&share_of(secret).to_be_bytes());
    let mut reply = Record::new(RecordType::ServerHello, payload).encode();
    reply.extend(Record::new(RecordType::KeyExchange, signature).encode());

    Ok((
        SessionKeys::derive(&shared.to_be_bytes(), client_nonce, server_nonce),
        reply,
    ))
}

/// EMSA-PKCS1 block type 1 padding (mirrors `rsa_repro`'s signing path so
/// the engine's raw private op can be used).
fn sign_pad(msg: &[u8], k: usize) -> Result<Vec<u8>, ProtoError> {
    if msg.len() + 11 > k {
        return Err(ProtoError::Rsa(rsa_repro::RsaError::MessageTooLarge));
    }
    let mut em = vec![0x00, 0x01];
    em.resize(k - msg.len() - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(msg);
    Ok(em)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rsa_repro::RsaPrivateKey;

    fn setup() -> (RsaPrivateKey, CrtEngine, Rng64) {
        let key = RsaPrivateKey::generate(512, &mut Rng64::new(51));
        let engine = CrtEngine::new(key.clone_secret(), true);
        (key, engine, Rng64::new(52))
    }

    #[test]
    fn full_kex_agrees_on_keys() {
        let (key, mut engine, mut rng) = setup();
        let (client, bundle) = Client::start(key.public_key(), &mut rng);
        let (server_keys, reply) = accept(&mut engine, &bundle, &mut rng).unwrap();
        let client_keys = client.finish(&reply).unwrap();
        assert_eq!(client_keys, server_keys);
        assert_eq!(engine.ops(), 1, "one signature per handshake");
    }

    #[test]
    fn impersonation_without_the_key_fails() {
        let (key, _, mut rng) = setup();
        // An impostor with a different host key signs the exchange.
        let impostor_key = RsaPrivateKey::generate(512, &mut Rng64::new(53));
        let mut impostor = CrtEngine::new(impostor_key, true);
        let (client, bundle) = Client::start(key.public_key(), &mut rng);
        let (_, reply) = accept(&mut impostor, &bundle, &mut rng).unwrap();
        assert!(matches!(
            client.finish(&reply),
            Err(ProtoError::AuthFailed(_))
        ));
    }

    #[test]
    fn stolen_key_forges_a_server() {
        // The attack payoff the paper implies: with the recovered host key,
        // an attacker's server authenticates as the victim.
        let (key, _, mut rng) = setup();
        let mut attacker = CrtEngine::new(key.clone_secret(), true); // stolen!
        let (client, bundle) = Client::start(key.public_key(), &mut rng);
        let (_, reply) = accept(&mut attacker, &bundle, &mut rng).unwrap();
        assert!(client.finish(&reply).is_ok(), "impersonation succeeds");
    }

    #[test]
    fn tampered_signature_is_rejected() {
        let (key, mut engine, mut rng) = setup();
        let (client, bundle) = Client::start(key.public_key(), &mut rng);
        let (_, mut reply) = accept(&mut engine, &bundle, &mut rng).unwrap();
        let n = reply.len();
        reply[n - 2] ^= 0x40;
        assert!(client.finish(&reply).is_err());
    }

    #[test]
    fn malformed_kex_rejected() {
        let (_, mut engine, mut rng) = setup();
        assert!(accept(&mut engine, &[], &mut rng).is_err());
        let short = Record::new(RecordType::ClientHello, vec![0; 7]).encode();
        assert!(accept(&mut engine, &short, &mut rng).is_err());
    }
}
