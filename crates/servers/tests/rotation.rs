//! Live key rotation: the crash-consistent lifecycle driven through both
//! servers — no dropped traffic, both-keys-resident drain windows, and a
//! retired key that is gone from scanner-visible memory at hardened levels.

use keyguard::ProtectionLevel;
use keyscan::Scanner;
use memsim::{FaultOp, FaultPlan, Kernel, MachineConfig};
use rsa_repro::material::KeyMaterial;
use servers::{ApacheServer, SecureServer, ServerConfig, SshServer};

fn kernel_for(level: ProtectionLevel) -> Kernel {
    Kernel::new(MachineConfig::small().with_policy(level.kernel_policy()))
}

fn config(level: ProtectionLevel) -> ServerConfig {
    ServerConfig::new(level).with_key_bits(128)
}

fn scanner_for_epoch(cfg: &ServerConfig, name: &str, ordinal: u64) -> Scanner {
    Scanner::from_material(&KeyMaterial::from_key(&cfg.derive_rotated_key(name, ordinal)))
}

#[test]
fn ssh_rotation_drains_with_no_dropped_traffic() {
    let level = ProtectionLevel::Integrated;
    let cfg = config(level);
    let mut kernel = kernel_for(level);
    let mut ssh = SshServer::start(&mut kernel, cfg).unwrap();
    ssh.set_concurrency(&mut kernel, 3).unwrap();
    ssh.pump(&mut kernel, 2).unwrap();
    let shed_before = ssh.shedding().total();
    let handshakes_before = ssh.handshakes();

    let old_scanner = scanner_for_epoch(&cfg, "openssh", 0);
    let new_scanner = scanner_for_epoch(&cfg, "openssh", 1);
    assert_eq!(ssh.rotate_key(&mut kernel).unwrap(), 1);
    assert_eq!(ssh.key_epoch(), 1);
    assert!(ssh.draining(), "open connections hold the old epoch");
    // The drain window: both keys resident in allocated memory.
    assert!(old_scanner.scan_kernel(&kernel).compromised());
    assert!(new_scanner.scan_kernel(&kernel).compromised());

    // Churn drains the old connections; traffic keeps flowing throughout.
    while ssh.draining() {
        ssh.pump(&mut kernel, 2).unwrap();
    }
    assert!(ssh.handshakes() > handshakes_before);
    assert_eq!(ssh.shedding().total(), shed_before, "no dropped traffic");
    // Retired: quiesce (drained children's COW frames unmap on exit) and
    // confirm zero old-key bytes anywhere the scanner can see.
    ssh.set_concurrency(&mut kernel, 0).unwrap();
    assert_eq!(old_scanner.scan_kernel(&kernel).total(), 0);
    // The successor still serves.
    ssh.pump(&mut kernel, 1).unwrap();
    assert!(new_scanner.scan_kernel(&kernel).compromised());
    ssh.stop(&mut kernel).unwrap();
}

#[test]
fn apache_rotation_replaces_the_pool_gracefully() {
    let level = ProtectionLevel::Integrated;
    let cfg = config(level);
    let mut kernel = kernel_for(level);
    let mut apache = ApacheServer::start(&mut kernel, cfg).unwrap();
    apache.pump(&mut kernel, 3).unwrap();
    let shed_before = apache.shedding().total();

    let old_scanner = scanner_for_epoch(&cfg, "apache", 0);
    let new_scanner = scanner_for_epoch(&cfg, "apache", 1);
    assert_eq!(apache.rotate_key(&mut kernel).unwrap(), 1);
    assert!(apache.draining(), "the pre-rotation pool holds the old epoch");
    let pool = apache.pool_size();

    // Each old worker serves one more request, then exits and is replaced.
    while apache.draining() {
        apache.pump(&mut kernel, 2).unwrap();
    }
    assert_eq!(apache.pool_size(), pool, "pool size preserved across drain");
    assert_eq!(apache.shedding().total(), shed_before, "no dropped traffic");
    assert_eq!(old_scanner.scan_kernel(&kernel).total(), 0);
    apache.pump(&mut kernel, 2).unwrap();
    assert!(new_scanner.scan_kernel(&kernel).compromised());
    apache.stop(&mut kernel).unwrap();
}

#[test]
fn faulted_rotation_leaves_old_key_fully_live() {
    let level = ProtectionLevel::Integrated;
    let cfg = config(level);
    let mut kernel = kernel_for(level);
    let mut ssh = SshServer::start(&mut kernel, cfg).unwrap();
    ssh.set_concurrency(&mut kernel, 2).unwrap();

    let new_scanner = scanner_for_epoch(&cfg, "openssh", 1);
    // Fault the first fallible operation of the rotation (the successor
    // region's frame allocation): install must unwind completely.
    let start = kernel.op_index();
    kernel.install_fault_plan(FaultPlan::new().fail_at_index(start + 1));
    assert!(ssh.rotate_key(&mut kernel).is_err());
    kernel.clear_fault_plan();

    assert_eq!(ssh.key_epoch(), 0, "rotation rolled back");
    assert!(!ssh.draining());
    assert_eq!(new_scanner.scan_kernel(&kernel).total(), 0);
    // Old key still serves all traffic.
    ssh.pump(&mut kernel, 3).unwrap();
    // And a retry of the rotation succeeds from the recovered state.
    assert_eq!(ssh.rotate_key(&mut kernel).unwrap(), 1);
    ssh.stop(&mut kernel).unwrap();
}

#[test]
fn back_to_back_rotations_bound_the_drain_window() {
    let level = ProtectionLevel::Shielded;
    let cfg = config(level);
    let mut kernel = kernel_for(level);
    let mut ssh = SshServer::start(&mut kernel, cfg).unwrap();
    ssh.set_concurrency(&mut kernel, 2).unwrap();

    assert_eq!(ssh.rotate_key(&mut kernel).unwrap(), 1);
    assert!(ssh.draining());
    // The second rotation force-finishes the first drain (sshd's
    // rekey-limit behaviour), so at most one predecessor is ever resident.
    assert_eq!(ssh.rotate_key(&mut kernel).unwrap(), 2);
    assert_eq!(ssh.key_epoch(), 2);

    ssh.set_concurrency(&mut kernel, 0).unwrap();
    assert!(!ssh.draining());
    for ordinal in 0..2 {
        let retired = scanner_for_epoch(&cfg, "openssh", ordinal);
        assert_eq!(
            retired.scan_kernel(&kernel).total(),
            0,
            "epoch {ordinal} must be fully retired"
        );
    }
    ssh.stop(&mut kernel).unwrap();
}

#[test]
fn retired_key_is_gone_at_every_hardened_level() {
    for level in ProtectionLevel::ALL {
        let cfg = config(level);
        let mut kernel = kernel_for(level);
        let mut ssh = SshServer::start(&mut kernel, cfg).unwrap();
        ssh.set_concurrency(&mut kernel, 2).unwrap();
        ssh.pump(&mut kernel, 2).unwrap();
        ssh.rotate_key(&mut kernel).unwrap();
        while ssh.draining() {
            ssh.pump(&mut kernel, 2).unwrap();
        }
        ssh.set_concurrency(&mut kernel, 0).unwrap();
        // Hardened kernels guarantee the retired epoch is gone everywhere.
        // (Stock-kernel levels leak startup-time residue — free-list PEM
        // buffers — exactly the exposure the paper's kernel patch closes.)
        if level.kernel_policy().zero_on_free {
            let old_scanner = scanner_for_epoch(&cfg, "openssh", 0);
            assert_eq!(
                old_scanner.scan_kernel(&kernel).total(),
                0,
                "retired key visible at {level}"
            );
        }
        ssh.pump(&mut kernel, 1).unwrap();
        ssh.stop(&mut kernel).unwrap();
    }
}

#[test]
fn shed_connections_are_retried_with_bounded_backoff() {
    let level = ProtectionLevel::Kernel;
    let cfg = config(level);
    let mut kernel = kernel_for(level);
    let mut ssh = SshServer::start(&mut kernel, cfg).unwrap();

    // The first fork attempt fails: the connection is shed and remembered.
    kernel.install_fault_plan(FaultPlan::new().fail_nth(FaultOp::Fork, 1));
    ssh.set_concurrency(&mut kernel, 1).unwrap();
    kernel.clear_fault_plan();
    assert_eq!(ssh.shedding().failed_forks, 1);
    assert_eq!(ssh.concurrency(), 0);

    // The next pump re-dials it successfully.
    ssh.pump(&mut kernel, 1).unwrap();
    let shed = ssh.shedding();
    assert_eq!(shed.retries, 1);
    assert_eq!(shed.recovered, 1);
    assert!(ssh.concurrency() >= 1, "shed connection was recovered");
    // total() deliberately excludes retry bookkeeping.
    assert_eq!(shed.total(), shed.failed_forks);
    ssh.stop(&mut kernel).unwrap();
}

#[test]
fn apache_retry_respawns_shed_workers() {
    let level = ProtectionLevel::Integrated;
    let cfg = config(level);
    let mut kernel = kernel_for(level);
    let mut apache = ApacheServer::start(&mut kernel, cfg).unwrap();
    let pool = apache.pool_size();

    // Kill one worker mid-pump: it is shed and queued for re-spawn.
    kernel.install_fault_plan(FaultPlan::new().kill_at_index(kernel.op_index() + 2));
    apache.pump(&mut kernel, 2).unwrap();
    kernel.clear_fault_plan();
    assert!(apache.shedding().shed_connections >= 1);
    assert!(apache.pool_size() < pool);

    // Backoff is deterministic: pump until the retry fires and recovers.
    for _ in 0..4 {
        apache.pump(&mut kernel, 1).unwrap();
    }
    let shed = apache.shedding();
    assert!(shed.retries >= 1);
    assert!(shed.recovered >= 1);
    assert_eq!(apache.pool_size(), pool);
    apache.stop(&mut kernel).unwrap();
}
