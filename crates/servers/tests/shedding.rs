//! Error-path resilience: servers shed failing connections/workers instead of
//! propagating `SimError` out of `pump`/`set_concurrency`, count what they
//! shed, and recover once the underlying resource pressure clears.

use keyguard::ProtectionLevel;
use memsim::{FaultOp, FaultPlan, Kernel, MachineConfig, PAGE_SIZE};
use servers::{ApacheServer, SecureServer, ServerConfig, SshServer};

const KEY_BITS: usize = 256;

fn machine() -> Kernel {
    Kernel::new(MachineConfig::small().with_mem_bytes(16 * 1024 * 1024))
}

fn cfg(level: ProtectionLevel) -> ServerConfig {
    ServerConfig::new(level).with_key_bits(KEY_BITS)
}

/// Installs a plan failing the next `n` fork attempts.
fn fail_next_forks(kernel: &mut Kernel, n: u64) {
    let done = kernel.op_count(FaultOp::Fork);
    let mut plan = FaultPlan::new();
    for i in 1..=n {
        plan = plan.fail_nth(FaultOp::Fork, done + i);
    }
    kernel.install_fault_plan(plan);
}

#[test]
fn ssh_recovers_after_fork_exhaustion_when_frames_free_up() {
    // Genuine memory exhaustion, not fault injection: a hog process grabs
    // nearly every free frame, so per-connection setup (key reload + exec
    // image) cannot allocate.
    let mut kernel = machine();
    let mut ssh = SshServer::start(&mut kernel, cfg(ProtectionLevel::None)).unwrap();
    ssh.set_concurrency(&mut kernel, 2).unwrap();
    assert_eq!(ssh.concurrency(), 2);

    let hog = kernel.spawn();
    let grab = (kernel.available_frames().saturating_sub(4)) * PAGE_SIZE;
    let hog_buf = kernel.heap_alloc(hog, grab).unwrap();

    let handshakes_before = ssh.handshakes();
    ssh.pump(&mut kernel, 4).unwrap();
    let shed_under_pressure = ssh.shedding();
    assert!(
        shed_under_pressure.failed_forks > 0,
        "starved connections must be shed, got {shed_under_pressure:?}"
    );
    assert!(ssh.is_running());

    // Frames free up: the hog releases its memory.
    kernel.heap_free(hog, hog_buf).unwrap();
    kernel.exit(hog).unwrap();

    ssh.pump(&mut kernel, 4).unwrap();
    assert!(
        ssh.handshakes() > handshakes_before,
        "server must serve again after recovery"
    );
    // set_concurrency regrows the pool to target once resources exist.
    ssh.set_concurrency(&mut kernel, 3).unwrap();
    assert_eq!(ssh.concurrency(), 3);
    ssh.stop(&mut kernel).unwrap();
}

#[test]
fn apache_recovers_after_fork_exhaustion() {
    let mut kernel = machine();
    let mut apache = ApacheServer::start(&mut kernel, cfg(ProtectionLevel::None)).unwrap();
    let pool_before = apache.concurrency();

    fail_next_forks(&mut kernel, 50);
    apache.set_concurrency(&mut kernel, pool_before + 5).unwrap();
    assert_eq!(apache.concurrency(), pool_before, "growth shed, not looped");
    assert!(apache.shedding().failed_forks > 0);

    kernel.clear_fault_plan();
    apache.set_concurrency(&mut kernel, pool_before + 5).unwrap();
    assert_eq!(apache.concurrency(), pool_before + 5, "pool regrows");
    apache.pump(&mut kernel, 4).unwrap();
    apache.stop(&mut kernel).unwrap();
}

#[test]
fn ssh_pump_survives_fork_faults_mid_batch() {
    let mut kernel = machine();
    let mut ssh = SshServer::start(&mut kernel, cfg(ProtectionLevel::Integrated)).unwrap();
    ssh.set_concurrency(&mut kernel, 2).unwrap();

    // Fail every second upcoming fork: churn replacements keep dying.
    let done = kernel.op_count(FaultOp::Fork);
    let mut plan = FaultPlan::new();
    for i in 1..=10 {
        if i % 2 == 1 {
            plan = plan.fail_nth(FaultOp::Fork, done + i);
        }
    }
    kernel.install_fault_plan(plan);

    let before = ssh.handshakes();
    ssh.pump(&mut kernel, 8).unwrap();
    kernel.clear_fault_plan();
    assert!(ssh.handshakes() > before, "surviving connections kept serving");
    assert!(ssh.shedding().failed_forks > 0);
    ssh.stop(&mut kernel).unwrap();
}

#[test]
fn worker_killed_mid_pump_is_shed_and_pool_stays_consistent() {
    let mut kernel = machine();
    let mut apache = ApacheServer::start(&mut kernel, cfg(ProtectionLevel::None)).unwrap();
    apache.pump(&mut kernel, 2).unwrap();
    let pool = apache.concurrency();

    // Kill the acting process at the next fallible op a worker performs.
    // The first handshake op of the next pump belongs to the worker serving
    // request 0 — probe its index by running an identical machine? Simpler:
    // kill at each of the next few op indices in turn until a shed happens.
    let start = kernel.op_index();
    let mut plan = FaultPlan::new();
    for k in 0..6 {
        plan = plan.kill_at_index(start + k);
    }
    kernel.install_fault_plan(plan);
    apache.pump(&mut kernel, 3).unwrap();
    kernel.clear_fault_plan();

    let shed = apache.shedding();
    assert!(
        shed.shed_connections > 0 && shed.shed_handshakes > 0,
        "a killed worker must be shed, got {shed:?}"
    );
    assert!(apache.concurrency() < pool);
    // The pool regrows and serves.
    apache.set_concurrency(&mut kernel, pool).unwrap();
    assert_eq!(apache.concurrency(), pool);
    let before = apache.handshakes();
    apache.pump(&mut kernel, 3).unwrap();
    assert!(apache.handshakes() > before);
    apache.stop(&mut kernel).unwrap();
}

#[test]
fn stop_survives_a_killed_daemon() {
    let mut kernel = machine();
    let mut ssh = SshServer::start(&mut kernel, cfg(ProtectionLevel::Library)).unwrap();
    ssh.set_concurrency(&mut kernel, 1).unwrap();
    // Kill the daemon at its next fork (the next churn replacement).
    let done = kernel.op_count(FaultOp::Fork);
    let start = kernel.op_index();
    let _ = done;
    // Find the next Fork op by brute force: kill at every op for a while —
    // the first fork in pump() acts on the daemon.
    let mut plan = FaultPlan::new();
    for k in 0..64 {
        plan = plan.kill_at_index(start + k);
    }
    kernel.install_fault_plan(plan);
    ssh.pump(&mut kernel, 2).unwrap();
    kernel.clear_fault_plan();
    // Whatever died, stop() must not error and must leave the server down.
    ssh.stop(&mut kernel).unwrap();
    assert!(!ssh.is_running());
}

#[test]
fn shedding_is_deterministic() {
    let run = || {
        let mut kernel = machine();
        let mut ssh = SshServer::start(&mut kernel, cfg(ProtectionLevel::Kernel)).unwrap();
        ssh.set_concurrency(&mut kernel, 2).unwrap();
        let start = kernel.op_index();
        let mut plan = FaultPlan::new().seeded(7, 11);
        for k in [3, 9, 20] {
            plan = plan.fail_at_index(start + k);
        }
        kernel.install_fault_plan(plan);
        ssh.pump(&mut kernel, 6).unwrap();
        kernel.clear_fault_plan();
        let _ = ssh.stop(&mut kernel);
        (ssh.handshakes(), ssh.shedding(), kernel.op_index())
    };
    assert_eq!(run(), run(), "same plan + workload -> identical shedding");
}
