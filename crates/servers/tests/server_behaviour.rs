//! End-to-end behaviour: do the simulated servers reproduce the memory
//! phenomena of Sections 3, 5, and 6 of the paper?

use exploits::{Ext2DirentLeak, TtyMemoryDump};
use keyguard::ProtectionLevel;
use keyscan::Scanner;
use memsim::{Kernel, MachineConfig, PAGE_SIZE};
use servers::{ApacheServer, SecureServer, ServerConfig, SshServer};
use simrng::Rng64;

const KEY_BITS: usize = 256;

fn machine(level: ProtectionLevel) -> Kernel {
    // 16 MB machine: big enough for tens of workers, fast enough for tests.
    let mut k = Kernel::new(
        MachineConfig::small()
            .with_mem_bytes(16 * 1024 * 1024)
            .with_policy(level.kernel_policy()),
    );
    // Scatter the free lists across all of RAM, as on a long-running box.
    k.age_memory(&mut Rng64::new(0xA6E), 1.0);
    k
}

fn start_ssh(kernel: &mut Kernel, level: ProtectionLevel) -> SshServer {
    SshServer::start(kernel, ServerConfig::new(level).with_key_bits(KEY_BITS)).unwrap()
}

fn start_apache(kernel: &mut Kernel, level: ProtectionLevel) -> ApacheServer {
    ApacheServer::start(kernel, ServerConfig::new(level).with_key_bits(KEY_BITS)).unwrap()
}

// -------------------------------------------------------------------------
// Section 3: unprotected behaviour
// -------------------------------------------------------------------------

#[test]
fn ssh_copies_flood_with_connection_churn() {
    let mut k = machine(ProtectionLevel::None);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(ssh.material());

    let at_start = scanner.scan_kernel(&k).total();
    ssh.set_concurrency(&mut k, 8).unwrap();
    let at_load = scanner.scan_kernel(&k).total();
    assert!(
        at_load > at_start,
        "live connections should add key copies: {at_start} -> {at_load}"
    );

    ssh.pump(&mut k, 30).unwrap();
    let report = scanner.scan_kernel(&k);
    assert!(
        report.unallocated() > 0,
        "closed connections must leave copies in unallocated memory"
    );
    ssh.stop(&mut k).unwrap();
}

#[test]
fn ssh_copies_grow_with_concurrency() {
    let mut k = machine(ProtectionLevel::None);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(ssh.material());
    ssh.set_concurrency(&mut k, 2).unwrap();
    let low = scanner.scan_kernel(&k).allocated();
    ssh.set_concurrency(&mut k, 12).unwrap();
    let high = scanner.scan_kernel(&k).allocated();
    assert!(high > low, "allocated copies scale with live connections: {low} -> {high}");
}

#[test]
fn ssh_stop_moves_copies_to_unallocated() {
    let mut k = machine(ProtectionLevel::None);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(ssh.material());
    ssh.set_concurrency(&mut k, 4).unwrap();
    ssh.pump(&mut k, 10).unwrap();
    ssh.stop(&mut k).unwrap();
    let report = scanner.scan_kernel(&k);
    // Observation (5) of Fig 5: after sshd stops, d/p/q survive only in
    // unallocated memory, plus the PEM file in the page cache.
    assert!(report.unallocated() > 0);
    let allocated_names: Vec<&str> = report
        .hits()
        .iter()
        .filter(|h| h.allocated)
        .map(|h| h.name.as_str())
        .collect();
    assert!(
        allocated_names.iter().all(|&n| n == "pem"),
        "only the cached PEM should remain allocated, got {allocated_names:?}"
    );
}

#[test]
fn apache_copies_scale_with_worker_pool() {
    let mut k = machine(ProtectionLevel::None);
    let mut apache = start_apache(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(apache.material());

    apache.set_concurrency(&mut k, 5).unwrap();
    apache.pump(&mut k, 10).unwrap(); // every worker does its first op
    let small_pool = scanner.scan_kernel(&k).allocated();

    apache.set_concurrency(&mut k, 20).unwrap();
    apache.pump(&mut k, 40).unwrap();
    let big_pool = scanner.scan_kernel(&k).allocated();
    assert!(
        big_pool > small_pool,
        "more workers, more allocated copies: {small_pool} -> {big_pool}"
    );
    apache.stop(&mut k).unwrap();
}

#[test]
fn apache_reaping_floods_unallocated_memory() {
    let mut k = machine(ProtectionLevel::None);
    let mut apache = start_apache(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(apache.material());
    apache.set_concurrency(&mut k, 16).unwrap();
    apache.pump(&mut k, 32).unwrap();
    let before = scanner.scan_kernel(&k).unallocated();
    apache.set_concurrency(&mut k, 5).unwrap(); // reap 11 workers
    let after = scanner.scan_kernel(&k).unallocated();
    assert!(
        after > before,
        "reaped workers leave copies in free memory: {before} -> {after}"
    );
}

// -------------------------------------------------------------------------
// Sections 5/6: protected behaviour
// -------------------------------------------------------------------------

#[test]
fn aligned_levels_keep_copies_constant_under_load() {
    for level in [ProtectionLevel::Application, ProtectionLevel::Library] {
        let mut k = machine(level);
        let mut ssh = start_ssh(&mut k, level);
        let scanner = Scanner::from_material(ssh.material());

        let at_start = scanner.scan_kernel(&k);
        ssh.set_concurrency(&mut k, 12).unwrap();
        ssh.pump(&mut k, 30).unwrap();
        let at_load = scanner.scan_kernel(&k);

        // d, p, q: exactly one copy each (the aligned page), independent of
        // load. The PEM file may add cache/buffer copies but no more appear
        // under load.
        assert_eq!(
            at_load.by_pattern()[..3],
            [1, 1, 1],
            "{level}: one aligned copy of each component"
        );
        assert_eq!(
            at_start.total(),
            at_load.total(),
            "{level}: copy count independent of connections"
        );
        assert_eq!(at_load.unallocated(), 0, "{level}: nothing in free memory");
        ssh.stop(&mut k).unwrap();
    }
}

#[test]
fn kernel_level_still_floods_allocated_but_not_unallocated() {
    let mut k = machine(ProtectionLevel::Kernel);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::Kernel);
    let scanner = Scanner::from_material(ssh.material());
    ssh.set_concurrency(&mut k, 8).unwrap();
    ssh.pump(&mut k, 20).unwrap();
    let report = scanner.scan_kernel(&k);
    assert!(
        report.allocated() > 3,
        "kernel level does not stop duplication in allocated memory"
    );
    assert_eq!(report.unallocated(), 0, "but free memory is always clean");
    ssh.stop(&mut k).unwrap();
    assert_eq!(scanner.scan_kernel(&k).unallocated(), 0);
}

#[test]
fn integrated_level_leaves_exactly_three_copies_total() {
    let mut k = machine(ProtectionLevel::Integrated);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::Integrated);
    let scanner = Scanner::from_material(ssh.material());
    ssh.set_concurrency(&mut k, 10).unwrap();
    ssh.pump(&mut k, 25).unwrap();
    let report = scanner.scan_kernel(&k);
    // d + p + q on the aligned page; the PEM was never cached (O_NOCACHE)
    // and its read buffer was zeroed.
    assert_eq!(report.by_pattern(), vec![1, 1, 1, 0]);
    assert_eq!(report.unallocated(), 0);
}

#[test]
fn integrated_apache_matches_paper_figure_28() {
    let mut k = machine(ProtectionLevel::Integrated);
    let mut apache = start_apache(&mut k, ProtectionLevel::Integrated);
    let scanner = Scanner::from_material(apache.material());
    apache.set_concurrency(&mut k, 16).unwrap();
    apache.pump(&mut k, 48).unwrap();
    let report = scanner.scan_kernel(&k);
    assert_eq!(report.by_pattern(), vec![1, 1, 1, 0]);
    apache.set_concurrency(&mut k, 5).unwrap();
    assert_eq!(scanner.scan_kernel(&k).by_pattern(), vec![1, 1, 1, 0]);
    apache.stop(&mut k).unwrap();
    assert_eq!(scanner.scan_kernel(&k).total(), 0, "clean after shutdown");
}

// -------------------------------------------------------------------------
// Attacks against the servers (Sections 2 and 5.2/6.2 end-to-end)
// -------------------------------------------------------------------------

#[test]
fn ext2_attack_compromises_unprotected_ssh() {
    let mut k = machine(ProtectionLevel::None);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(ssh.material());
    // Paper methodology: create connections, close them all, then leak.
    ssh.set_concurrency(&mut k, 10).unwrap();
    ssh.pump(&mut k, 20).unwrap();
    ssh.set_concurrency(&mut k, 0).unwrap();
    let capture = Ext2DirentLeak::new(500).run(&mut k).unwrap();
    assert!(capture.succeeded(&scanner), "unprotected ssh must fall");
    assert!(capture.keys_found(&scanner) >= 1);
}

#[test]
fn ext2_attack_fails_against_kernel_and_integrated_levels() {
    for level in [ProtectionLevel::Kernel, ProtectionLevel::Integrated] {
        let mut k = machine(level);
        let mut ssh = start_ssh(&mut k, level);
        let scanner = Scanner::from_material(ssh.material());
        ssh.set_concurrency(&mut k, 10).unwrap();
        ssh.pump(&mut k, 20).unwrap();
        ssh.set_concurrency(&mut k, 0).unwrap();
        let capture = Ext2DirentLeak::new(500).run(&mut k).unwrap();
        assert!(!capture.succeeded(&scanner), "{level}: ext2 leak must find nothing");
    }
}

#[test]
fn tty_attack_succeeds_partially_against_integrated_level() {
    // Fig 7b: even integrated protection leaves ~50% success because the
    // dump covers ~50% of RAM and one copy must exist somewhere.
    let mut k = machine(ProtectionLevel::Integrated);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::Integrated);
    let scanner = Scanner::from_material(ssh.material());
    ssh.set_concurrency(&mut k, 6).unwrap();
    ssh.pump(&mut k, 12).unwrap();

    let dump = TtyMemoryDump::paper();
    let mut rng = Rng64::new(99);
    let runs = 60;
    let mut successes = 0;
    let mut keys = 0;
    for _ in 0..runs {
        let c = dump.run(&k, &mut rng);
        if c.succeeded(&scanner) {
            successes += 1;
        }
        keys += c.keys_found(&scanner);
    }
    let rate = f64::from(successes) / f64::from(runs);
    assert!(
        (0.25..=0.75).contains(&rate),
        "integrated tty success rate {rate} should hover near disclosed fraction"
    );
    // Far fewer copies per successful run than unprotected would show.
    assert!(keys as f64 / f64::from(runs) < 4.0);
}

#[test]
fn tty_attack_overwhelms_unprotected_ssh() {
    let mut k = machine(ProtectionLevel::None);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(ssh.material());
    ssh.set_concurrency(&mut k, 10).unwrap();
    ssh.pump(&mut k, 20).unwrap();

    let dump = TtyMemoryDump::paper();
    let mut rng = Rng64::new(7);
    let runs = 30;
    let successes = (0..runs)
        .filter(|_| dump.run(&k, &mut rng).succeeded(&scanner))
        .count();
    // With dozens of copies spread over memory, nearly every dump hits one.
    assert!(
        successes as f64 / runs as f64 > 0.8,
        "unprotected ssh: {successes}/{runs}"
    );
}

// -------------------------------------------------------------------------
// Robustness
// -------------------------------------------------------------------------

#[test]
fn servers_share_one_machine_without_interference() {
    let mut k = machine(ProtectionLevel::None);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::None);
    let mut apache = ApacheServer::start(
        &mut k,
        ServerConfig::new(ProtectionLevel::None)
            .with_key_bits(KEY_BITS)
            .with_seed(777),
    )
    .unwrap();
    assert_ne!(ssh.key().n(), apache.key().n(), "distinct keys");
    ssh.set_concurrency(&mut k, 3).unwrap();
    apache.set_concurrency(&mut k, 6).unwrap();
    ssh.pump(&mut k, 6).unwrap();
    apache.pump(&mut k, 12).unwrap();
    let ssh_report = Scanner::from_material(ssh.material()).scan_kernel(&k);
    let apache_report = Scanner::from_material(apache.material()).scan_kernel(&k);
    assert!(ssh_report.total() > 0);
    assert!(apache_report.total() > 0);
    ssh.stop(&mut k).unwrap();
    apache.stop(&mut k).unwrap();
}

#[test]
fn stop_is_idempotent() {
    let mut k = machine(ProtectionLevel::Integrated);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::Integrated);
    ssh.stop(&mut k).unwrap();
    ssh.stop(&mut k).unwrap();
    assert!(!ssh.is_running());
}

#[test]
fn handshake_counter_advances() {
    let mut k = machine(ProtectionLevel::None);
    let mut apache = start_apache(&mut k, ProtectionLevel::None);
    assert_eq!(apache.handshakes(), 0);
    apache.pump(&mut k, 7).unwrap();
    assert_eq!(apache.handshakes(), 7);
    assert_eq!(apache.name(), "apache");
}

#[test]
fn tiny_machine_oom_is_graceful() {
    let mut k = Kernel::new(
        MachineConfig::small()
            .with_mem_bytes(40 * PAGE_SIZE)
            .with_policy(ProtectionLevel::None.kernel_policy()),
    );
    let mut ssh = SshServer::start(
        &mut k,
        ServerConfig::new(ProtectionLevel::None).with_key_bits(KEY_BITS),
    )
    .unwrap();
    // Driving far past capacity must neither panic nor abort the batch: the
    // daemon sheds the connections it cannot open and stays up.
    ssh.set_concurrency(&mut k, 500).unwrap();
    assert!(ssh.concurrency() < 500, "a 40-page machine cannot hold 500");
    assert!(ssh.shedding().failed_forks > 0, "shed work must be counted");
    assert!(ssh.is_running());
}

#[test]
fn derive_key_predicts_server_keys() {
    let cfg = ServerConfig::new(ProtectionLevel::None).with_key_bits(KEY_BITS);
    let mut k = machine(ProtectionLevel::None);
    let ssh = SshServer::start(&mut k, cfg).unwrap();
    assert_eq!(ssh.key(), &cfg.derive_key("openssh"));
    let apache = ApacheServer::start(&mut k, cfg).unwrap();
    assert_eq!(apache.key(), &cfg.derive_key("apache"));
}

#[test]
fn transfer_moves_payload_without_new_key_copies_when_integrated() {
    let mut k = machine(ProtectionLevel::Integrated);
    let mut ssh = start_ssh(&mut k, ProtectionLevel::Integrated);
    let scanner = Scanner::from_material(ssh.material());
    ssh.set_concurrency(&mut k, 4).unwrap();
    let before = scanner.scan_kernel(&k).total();
    ssh.transfer(&mut k, 300 * 1024).unwrap();
    assert_eq!(scanner.scan_kernel(&k).total(), before);
}

#[test]
fn apache_graceful_restart_churns_or_preserves_by_level() {
    // Unprotected: a graceful restart floods free memory with the reaped
    // workers' copies, and the fresh pool re-accumulates.
    let mut k = machine(ProtectionLevel::None);
    let mut apache = start_apache(&mut k, ProtectionLevel::None);
    let scanner = Scanner::from_material(apache.material());
    apache.set_concurrency(&mut k, 12).unwrap();
    apache.pump(&mut k, 24).unwrap();
    let before = scanner.scan_kernel(&k).unallocated();
    apache.graceful_restart(&mut k).unwrap();
    let after = scanner.scan_kernel(&k).unallocated();
    assert!(after > before, "restart dumps copies: {before} -> {after}");
    apache.pump(&mut k, 24).unwrap();
    assert!(scanner.scan_kernel(&k).allocated() > 3);

    // Integrated: restart leaves exactly the aligned copies and nothing in
    // free memory.
    let mut k2 = machine(ProtectionLevel::Integrated);
    let mut protected = start_apache(&mut k2, ProtectionLevel::Integrated);
    let scanner2 = Scanner::from_material(protected.material());
    protected.set_concurrency(&mut k2, 12).unwrap();
    protected.pump(&mut k2, 24).unwrap();
    protected.graceful_restart(&mut k2).unwrap();
    protected.pump(&mut k2, 24).unwrap();
    let report = scanner2.scan_kernel(&k2);
    assert_eq!(report.by_pattern(), vec![1, 1, 1, 0]);
    assert_eq!(report.unallocated(), 0);
}

#[test]
fn apache_pool_respects_prefork_bounds() {
    let mut k = machine(ProtectionLevel::None);
    let mut apache = start_apache(&mut k, ProtectionLevel::None);
    // Floor: StartServers.
    apache.set_concurrency(&mut k, 0).unwrap();
    assert_eq!(apache.pool_size(), 5);
    // Cap: MaxClients (the paper's Apache default is 150).
    apache.set_concurrency(&mut k, 10_000).unwrap();
    assert_eq!(apache.pool_size(), 150);
    apache.set_concurrency(&mut k, 10).unwrap();
    assert_eq!(apache.pool_size(), 10);
    apache.stop(&mut k).unwrap();
    assert_eq!(apache.pool_size(), 0);
}

#[test]
fn ssh_and_tls_handshake_protocols_are_wired_correctly() {
    use servers::Protocol;
    let mut k = machine(ProtectionLevel::None);
    let ssh_worker = servers::WorkerCrypto::with_protocol(
        ServerConfig::new(ProtectionLevel::None)
            .with_key_bits(KEY_BITS)
            .derive_key("openssh"),
        ProtectionLevel::None,
        1,
        Protocol::Ssh,
    );
    assert_eq!(ssh_worker.protocol(), Protocol::Ssh);
    let tls_worker = servers::WorkerCrypto::new(
        ServerConfig::new(ProtectionLevel::None)
            .with_key_bits(KEY_BITS)
            .derive_key("apache"),
        ProtectionLevel::None,
        1,
    );
    assert_eq!(tls_worker.protocol(), Protocol::Tls);
    let _ = &mut k;
}
