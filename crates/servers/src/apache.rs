//! The simulated Apache 2.0 prefork + mod_ssl server: a parent that loads
//! the key once and a worker pool that scales with load. Workers are
//! long-lived, so key copies accumulate in *allocated* memory (COW-broken
//! key pages + per-worker Montgomery caches); reaping idle workers dumps
//! those copies into unallocated memory.

use crate::engine::{ScatteredKey, WorkerCrypto};
use crate::{SecureServer, ServerConfig, SheddingStats, RETRY_BACKLOG_CAP, RETRY_BACKOFF_MAX};
use keyguard::{Custody, KeyRotation, SecureKeyRegion, ShieldedKeyRegion};
use memsim::{FileId, Kernel, Pid, SimError, SimResult, VAddr};
use rsa_repro::material::KeyMaterial;
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;

/// Apache prefork defaults (httpd.conf `StartServers` / `MaxClients`).
const START_SERVERS: usize = 5;
const MAX_CLIENTS: usize = 150;

struct Worker {
    pid: Pid,
    crypto: WorkerCrypto,
    /// Key epoch the worker's crypto was cloned from; a pre-rotation worker
    /// drains gracefully (serve one more request, then exit).
    epoch: u64,
    /// Forked during a drain window, so its address space COW-shares the
    /// predecessor key's pages. Retire recycles tainted workers (reap +
    /// respawn) to close that hole — the parent's wipe only COW-breaks its
    /// own mapping.
    tainted: bool,
}

impl core::fmt::Debug for Worker {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Worker(pid={:?}, epoch={}, key=<redacted>)", self.pid, self.epoch)
    }
}

/// Simulated Apache HTTP Server 2.0.55 (prefork MPM, SSL enabled).
///
/// See [`crate`] docs and [`SecureServer`] for the interface.
pub struct ApacheServer {
    config: ServerConfig,
    key: RsaPrivateKey,
    material: KeyMaterial,
    pem_file: FileId,
    parent: Pid,
    region: Option<SecureKeyRegion>,
    /// The shielded (prekey-encrypted) region at `ProtectionLevel::Shielded`:
    /// ciphertext at rest, opened only around each private-key operation.
    shield: Option<ShieldedKeyRegion>,
    /// Address of the shared RSA struct: the page workers dirty on their
    /// first private-key op (unprotected levels only).
    shared_struct: Option<VAddr>,
    /// The parent's scattered key copies at unaligned levels, retained so a
    /// rotation can zero + free the predecessor's chunks at Retire.
    scattered: Option<ScatteredKey>,
    workers: Vec<Worker>,
    next_worker: usize,
    rng: Rng64,
    handshakes: u64,
    shed: SheddingStats,
    running: bool,
    /// Current key epoch ordinal (0 = boot key).
    epoch: u64,
    /// The in-flight rotation while the previous epoch drains.
    rotation: Option<KeyRotation>,
    /// Predecessor state held only during a drain window.
    old_scattered: Option<ScatteredKey>,
    old_material: Option<KeyMaterial>,
    old_pem: Option<FileId>,
    /// Bounded-backoff re-dial state for shed workers.
    retry_backlog: u64,
    retry_delay: u64,
    retry_backoff: u64,
}

/// Holds the host key and its search material; `{:?}` reports pool state only.
impl core::fmt::Debug for ApacheServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ApacheServer(workers={}, handshakes={}, running={}, key=<redacted>)",
            self.workers.len(),
            self.handshakes,
            self.running
        )
    }
}

impl ApacheServer {
    fn spawn_worker(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if self.workers.len() >= MAX_CLIENTS {
            return Ok(());
        }
        let pid = kernel.fork(self.parent)?;
        let crypto = WorkerCrypto::with_protocol(
            self.key.clone_secret(),
            self.config.level,
            self.rng.next_u64(),
            crate::engine::Protocol::Tls,
        );
        self.workers.push(Worker {
            pid,
            crypto,
            epoch: self.epoch,
            tainted: self.rotation.is_some(),
        });
        Ok(())
    }

    /// Spawns one worker, shedding (not propagating) a fork failure. A shed
    /// worker joins the bounded re-spawn backlog.
    fn spawn_or_shed(&mut self, kernel: &mut Kernel) -> bool {
        match self.spawn_worker(kernel) {
            Ok(()) => true,
            Err(_) => {
                self.shed.failed_forks += 1;
                self.note_shed_for_retry();
                false
            }
        }
    }

    /// Remembers one shed worker for re-spawning, up to the cap.
    fn note_shed_for_retry(&mut self) {
        self.retry_backlog = (self.retry_backlog + 1).min(RETRY_BACKLOG_CAP);
    }

    /// One deterministic bounded-backoff re-spawn step, run at the top of
    /// every `pump` call (same discipline as the SSH server's re-dial).
    fn retry_shed(&mut self, kernel: &mut Kernel) {
        if self.retry_backlog == 0 {
            return;
        }
        if self.retry_delay > 0 {
            self.retry_delay -= 1;
            return;
        }
        self.shed.retries += 1;
        if self.spawn_worker(kernel).is_ok() {
            self.shed.recovered += 1;
            self.retry_backlog -= 1;
            self.retry_backoff = 1;
        } else {
            self.retry_backoff = (self.retry_backoff * 2).min(RETRY_BACKOFF_MAX);
        }
        self.retry_delay = self.retry_backoff;
    }

    /// Retires the drain window once no worker remains on an old epoch.
    fn maybe_retire(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if self.rotation.is_some() && self.workers.iter().all(|w| w.epoch >= self.epoch) {
            self.retire_old(kernel)?;
        }
        Ok(())
    }

    /// Retire phase: zeroizes the predecessor's custody, its scattered
    /// chunks at unaligned levels, and its shredded PEM file. No-op when
    /// not draining.
    ///
    /// **Retryable**: every teardown step can fault (zeroing writes break
    /// COW shares, the shred allocates page-cache frames), so on error the
    /// un-torn-down pieces are put back and the drain window stays open —
    /// the next quiesce point finishes the retirement.
    fn retire_old(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        let Some(mut rot) = self.rotation.take() else {
            return Ok(());
        };
        if kernel.alive(self.parent) {
            if let Err(e) = rot.retire(kernel, self.parent) {
                self.rotation = Some(rot);
                return Err(e);
            }
            if let Some(sk) = self.old_scattered.take() {
                if let Err((sk, e)) = sk.try_zero_and_free(kernel, self.parent) {
                    self.old_scattered = Some(sk);
                    self.rotation = Some(rot);
                    return Err(e);
                }
            }
        } else {
            rot.retire_dead();
            self.old_scattered = None;
        }
        if let Some(fid) = self.old_pem.take() {
            if let Err(e) = crate::engine::shred_file(kernel, fid) {
                self.old_pem = Some(fid);
                self.rotation = Some(rot);
                return Err(e);
            }
        }
        // Recycle workers forked during the drain window: their address
        // spaces COW-share the predecessor's (now-wiped-in-the-parent) pages,
        // and only their exit releases the original frames. Replacements are
        // forked after the wipe, so they are clean — prefork recycles workers
        // routinely (MaxRequestsPerChild), and no request is in flight here.
        // A failure mid-recycle keeps the drain window open so the loop
        // resumes with the workers still tainted.
        while let Some(pos) = self.workers.iter().position(|w| w.tainted) {
            let w = self.workers.swap_remove(pos);
            match kernel.exit(w.pid) {
                Err(SimError::NoSuchProcess(_)) => self.shed.shed_connections += 1,
                Err(e) => {
                    self.workers.push(w);
                    self.rotation = Some(rot);
                    return Err(e);
                }
                Ok(()) => {}
            }
            self.spawn_or_shed(kernel);
        }
        self.old_material = None;
        Ok(())
    }

    /// Bounds the drain window before a back-to-back rotation or a graceful
    /// restart: any worker still on an old epoch is reaped and the
    /// predecessor retires.
    fn force_drain(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if self.rotation.is_none() {
            return Ok(());
        }
        while let Some(pos) = self.workers.iter().position(|w| w.epoch < self.epoch) {
            let w = self.workers.swap_remove(pos);
            match kernel.exit(w.pid) {
                Err(SimError::NoSuchProcess(_)) => self.shed.shed_connections += 1,
                r => r?,
            }
        }
        self.retire_old(kernel)
    }

    fn reap_worker(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if let Some(w) = self.workers.pop() {
            match kernel.exit(w.pid) {
                // Already dead (fault-plan kill): the slot is simply gone.
                Err(SimError::NoSuchProcess(_)) => self.shed.shed_connections += 1,
                r => r?,
            }
        }
        Ok(())
    }

    /// The current worker pool size.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// The simulated key file on disk.
    #[must_use]
    pub fn pem_file(&self) -> FileId {
        self.pem_file
    }

    /// `apachectl graceful`: reap every worker, re-read the key file in the
    /// parent, and respawn the pool. On an unprotected machine each restart
    /// dumps a worker-pool's worth of key copies into free memory and loads
    /// fresh ones; the aligned levels re-install the single locked page.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn graceful_restart(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        // A restart mid-drain first finishes the drain: the old epoch's
        // workers are being reaped below anyway, and its key must not
        // survive the reload.
        self.force_drain(kernel)?;
        let pool = self.workers.len().max(START_SERVERS);
        while !self.workers.is_empty() {
            self.reap_worker(kernel)?;
        }
        // Re-load the configuration, key file included.
        let level = self.config.level;
        let scattered = ScatteredKey::load(
            kernel,
            self.parent,
            self.pem_file,
            &self.material,
            level.nocache_pem(),
            level.align_key(),
        )?;
        if level.align_key() {
            // Retire the old region (shielded or plain), then re-install.
            if let Some(old) = self.region.take() {
                old.destroy(kernel, self.parent)?;
            }
            if let Some(old) = self.shield.take() {
                old.destroy(kernel, self.parent)?;
            }
            let region = SecureKeyRegion::install(kernel, self.parent, &self.key)?;
            scattered.zero_and_free(kernel, self.parent)?;
            if level.shield_key() {
                match ShieldedKeyRegion::wrap(kernel, self.parent, region, &mut self.rng) {
                    Ok(shield) => self.shield = Some(shield),
                    Err((region, e)) => {
                        let _ = region.destroy(kernel, self.parent);
                        return Err(e);
                    }
                }
            } else {
                self.region = Some(region);
            }
        } else {
            self.shared_struct = Some(scattered.rsa_struct_addr());
            // The prior reload's chunks keep leaking (faithful restart
            // behaviour); only the newest handle is retired by rotation.
            self.scattered = Some(scattered);
        }
        for _ in 0..pool {
            self.spawn_worker(kernel)?;
        }
        Ok(())
    }
}

impl SecureServer for ApacheServer {
    fn start(kernel: &mut Kernel, config: ServerConfig) -> SimResult<Self> {
        let mut rng = Rng64::new(config.seed ^ 0xA9AC_4E00);
        let key = RsaPrivateKey::generate(config.key_bits, &mut rng);
        let material = KeyMaterial::from_key(&key);
        let pem_file = kernel.create_file("/etc/apache2/ssl/server.key", material.pem_bytes());
        // The TLS key file is mode 0600, like the SSH host key.
        kernel.chmod_private(pem_file)?;

        let parent = kernel.spawn();
        let level = config.level;
        let scattered = ScatteredKey::load(
            kernel,
            parent,
            pem_file,
            &material,
            level.nocache_pem(),
            level.align_key(),
        )?;
        let (region, shield, shared_struct, scattered) = if level.align_key() {
            let region = SecureKeyRegion::install(kernel, parent, &key)?;
            scattered.zero_and_free(kernel, parent)?;
            if level.shield_key() {
                match ShieldedKeyRegion::wrap(kernel, parent, region, &mut rng) {
                    Ok(shield) => (None, Some(shield), None, None),
                    Err((region, e)) => {
                        let _ = region.destroy(kernel, parent);
                        return Err(e);
                    }
                }
            } else {
                (Some(region), None, None, None)
            }
        } else {
            let addr = scattered.rsa_struct_addr();
            // Keep the handle: a later rotation retires these chunks.
            (None, None, Some(addr), Some(scattered))
        };

        let mut server = Self {
            config,
            key,
            material,
            pem_file,
            parent,
            region,
            shield,
            shared_struct,
            scattered,
            workers: Vec::new(),
            next_worker: 0,
            rng,
            handshakes: 0,
            shed: SheddingStats::default(),
            running: true,
            epoch: 0,
            rotation: None,
            old_scattered: None,
            old_material: None,
            old_pem: None,
            retry_backlog: 0,
            retry_delay: 0,
            retry_backoff: 1,
        };
        for _ in 0..START_SERVERS {
            server.spawn_worker(kernel)?;
        }
        Ok(server)
    }

    fn set_concurrency(&mut self, kernel: &mut Kernel, n: usize) -> SimResult<()> {
        // A reconfiguration bounds any open drain window: pre-rotation
        // workers are idle here (no request in flight), so they exit
        // gracefully and successor-epoch replacements join — round-robin
        // scheduling alone can starve a drained worker of its final request
        // forever, which would leave the predecessor key resident.
        if self.rotation.is_some() {
            while let Some(pos) = self.workers.iter().position(|w| w.epoch < self.epoch) {
                let w = self.workers.swap_remove(pos);
                match kernel.exit(w.pid) {
                    Err(SimError::NoSuchProcess(_)) => self.shed.shed_connections += 1,
                    r => r?,
                }
                self.spawn_or_shed(kernel);
            }
        }
        // Prefork keeps at least StartServers processes alive and grows the
        // pool to match concurrent demand. Growth is bounded — one spawn
        // attempt per missing slot, failures shed — so a fork-exhausted pool
        // settles below target and regrows on a later call.
        let target = n.clamp(START_SERVERS, MAX_CLIENTS);
        let missing = target.saturating_sub(self.workers.len());
        for _ in 0..missing {
            self.spawn_or_shed(kernel);
        }
        while self.workers.len() > target {
            self.reap_worker(kernel)?;
        }
        self.maybe_retire(kernel)
    }

    fn pump(&mut self, kernel: &mut Kernel, requests: usize) -> SimResult<()> {
        self.retry_shed(kernel);
        for _ in 0..requests {
            if self.workers.is_empty() && !self.spawn_or_shed(kernel) {
                // No pool and no way to grow one right now: this request is
                // dropped, like a listener backlog overflow.
                continue;
            }
            let idx = self.next_worker % self.workers.len();
            self.next_worker = self.next_worker.wrapping_add(1);
            let shared = self.shared_struct;
            let parent = self.parent;
            let worker_epoch = self.workers[idx].epoch;
            // A pre-rotation worker drains on its own epoch's key material.
            let material = if worker_epoch < self.epoch {
                self.old_material
                    .as_ref()
                    .unwrap_or(&self.material)
                    .clone_secret()
            } else {
                self.material.clone_secret()
            };
            let w = &mut self.workers[idx];
            let result = crate::engine::with_shield_open(&mut self.shield, kernel, parent, |k| {
                w.crypto.handshake(k, w.pid, shared, &material)
            });
            match result {
                Ok(()) => {
                    self.handshakes += 1;
                    if worker_epoch < self.epoch {
                        // Graceful drain: the old-epoch worker finished its
                        // request; it exits and a successor-epoch replacement
                        // joins the pool — no request was dropped.
                        let pid = self.workers.swap_remove(idx).pid;
                        if kernel.alive(pid) {
                            let _ = kernel.exit(pid);
                        }
                        self.spawn_or_shed(kernel);
                    }
                }
                Err(_) => {
                    // Shed the failing worker — prefork reaps a crashed
                    // child and carries on.
                    self.shed.shed_handshakes += 1;
                    let pid = self.workers.swap_remove(idx).pid;
                    if kernel.alive(pid) {
                        let _ = kernel.exit(pid);
                    }
                    self.shed.shed_connections += 1;
                    self.note_shed_for_retry();
                }
            }
        }
        self.maybe_retire(kernel)
    }

    fn transfer(&mut self, kernel: &mut Kernel, bytes: usize) -> SimResult<()> {
        if self.workers.is_empty() {
            self.spawn_worker(kernel)?;
        }
        let idx = self.rng.gen_index(self.workers.len());
        let pid = self.workers[idx].pid;
        crate::engine::move_data(kernel, pid, bytes, self.rng.next_u64())
    }

    fn stop(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if !self.running {
            return Ok(());
        }
        while !self.workers.is_empty() {
            self.reap_worker(kernel)?;
        }
        // An open drain window retires before shutdown.
        self.retire_old(kernel)?;
        let parent_alive = kernel.alive(self.parent);
        if let Some(region) = self.region.take() {
            // A parent already killed by a fault took its mappings with it.
            if parent_alive {
                region.destroy(kernel, self.parent)?;
            }
        }
        if let Some(shield) = self.shield.take() {
            if parent_alive {
                shield.destroy(kernel, self.parent)?;
            }
        }
        if parent_alive {
            kernel.exit(self.parent)?;
        }
        self.running = false;
        Ok(())
    }

    fn config(&self) -> ServerConfig {
        self.config
    }

    fn restart(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        self.graceful_restart(kernel)
    }

    fn rotate_key(&mut self, kernel: &mut Kernel) -> SimResult<u64> {
        if !self.running || !kernel.alive(self.parent) {
            return Err(SimError::NoSuchProcess(self.parent));
        }
        // Bound the drain window: a back-to-back rotation finishes the
        // previous epoch's drain before starting its own.
        self.force_drain(kernel)?;

        let ordinal = self.epoch + 1;
        let level = self.config.level;
        // Generate: host-side only, deterministic in (config, ordinal).
        let new_key = self.config.derive_rotated_key("apache", ordinal);
        let new_material = KeyMaterial::from_key(&new_key);

        // Install: the successor's protected home. Transactional — on error
        // the old key is untouched and no successor byte is resident.
        let mut rot = KeyRotation::begin(level, ordinal);
        rot.install(kernel, self.parent, &new_key, &mut self.rng)?;

        // The successor key file replaces the old path, mode 0600.
        let new_pem = kernel.create_file("/etc/apache2/ssl/server.key", new_material.pem_bytes());
        if let Err(e) = kernel.chmod_private(new_pem) {
            let _ = rot.abort(kernel, self.parent);
            return Err(e);
        }

        // The parent's scattered home at unaligned levels — rolled back as a
        // unit on failure, keeping "old key fully live" true.
        let new_scattered = if level.align_key() {
            None
        } else {
            match ScatteredKey::load_transactional(
                kernel,
                self.parent,
                new_pem,
                &new_material,
                level.nocache_pem(),
            ) {
                Ok(sk) => Some(sk),
                Err(e) => {
                    let _ = crate::engine::shred_file(kernel, new_pem);
                    let _ = rot.abort(kernel, self.parent);
                    return Err(e);
                }
            }
        };

        // Activate: the atomic in-memory switch — new handshakes bind the
        // successor from here on.
        let outgoing = Custody::from_parts(self.region.take(), self.shield.take());
        let (region, shield) = match rot.activate(outgoing) {
            Some(custody) => custody.into_parts(),
            None => (None, None),
        };
        self.region = region;
        self.shield = shield;
        self.shared_struct = new_scattered.as_ref().map(ScatteredKey::rsa_struct_addr);
        self.old_scattered = self.scattered.take();
        self.scattered = new_scattered;
        self.old_material = Some(core::mem::replace(&mut self.material, new_material));
        self.old_pem = Some(core::mem::replace(&mut self.pem_file, new_pem));
        self.key = new_key;
        self.epoch = ordinal;

        // Drain: old-epoch workers each serve one more request, then exit.
        rot.begin_drain();
        self.rotation = Some(rot);
        // An idle (empty-pool) server retires the predecessor immediately.
        self.maybe_retire(kernel)?;
        Ok(ordinal)
    }

    fn key_epoch(&self) -> u64 {
        self.epoch
    }

    fn draining(&self) -> bool {
        self.rotation.is_some()
    }

    fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    fn material(&self) -> &KeyMaterial {
        &self.material
    }

    fn concurrency(&self) -> usize {
        self.workers.len()
    }

    fn is_running(&self) -> bool {
        self.running
    }

    fn name(&self) -> &'static str {
        "apache"
    }

    fn handshakes(&self) -> u64 {
        self.handshakes
    }

    fn shedding(&self) -> SheddingStats {
        self.shed
    }
}
