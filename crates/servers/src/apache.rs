//! The simulated Apache 2.0 prefork + mod_ssl server: a parent that loads
//! the key once and a worker pool that scales with load. Workers are
//! long-lived, so key copies accumulate in *allocated* memory (COW-broken
//! key pages + per-worker Montgomery caches); reaping idle workers dumps
//! those copies into unallocated memory.

use crate::engine::{ScatteredKey, WorkerCrypto};
use crate::{SecureServer, ServerConfig, SheddingStats};
use keyguard::{SecureKeyRegion, ShieldedKeyRegion};
use memsim::{FileId, Kernel, Pid, SimError, SimResult, VAddr};
use rsa_repro::material::KeyMaterial;
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;

/// Apache prefork defaults (httpd.conf `StartServers` / `MaxClients`).
const START_SERVERS: usize = 5;
const MAX_CLIENTS: usize = 150;

struct Worker {
    pid: Pid,
    crypto: WorkerCrypto,
}

impl core::fmt::Debug for Worker {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Worker(pid={:?}, key=<redacted>)", self.pid)
    }
}

/// Simulated Apache HTTP Server 2.0.55 (prefork MPM, SSL enabled).
///
/// See [`crate`] docs and [`SecureServer`] for the interface.
pub struct ApacheServer {
    config: ServerConfig,
    key: RsaPrivateKey,
    material: KeyMaterial,
    pem_file: FileId,
    parent: Pid,
    region: Option<SecureKeyRegion>,
    /// The shielded (prekey-encrypted) region at `ProtectionLevel::Shielded`:
    /// ciphertext at rest, opened only around each private-key operation.
    shield: Option<ShieldedKeyRegion>,
    /// Address of the shared RSA struct: the page workers dirty on their
    /// first private-key op (unprotected levels only).
    shared_struct: Option<VAddr>,
    workers: Vec<Worker>,
    next_worker: usize,
    rng: Rng64,
    handshakes: u64,
    shed: SheddingStats,
    running: bool,
}

/// Holds the host key and its search material; `{:?}` reports pool state only.
impl core::fmt::Debug for ApacheServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ApacheServer(workers={}, handshakes={}, running={}, key=<redacted>)",
            self.workers.len(),
            self.handshakes,
            self.running
        )
    }
}

impl ApacheServer {
    fn spawn_worker(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if self.workers.len() >= MAX_CLIENTS {
            return Ok(());
        }
        let pid = kernel.fork(self.parent)?;
        let crypto = WorkerCrypto::with_protocol(
            self.key.clone_secret(),
            self.config.level,
            self.rng.next_u64(),
            crate::engine::Protocol::Tls,
        );
        self.workers.push(Worker { pid, crypto });
        Ok(())
    }

    /// Spawns one worker, shedding (not propagating) a fork failure.
    fn spawn_or_shed(&mut self, kernel: &mut Kernel) -> bool {
        match self.spawn_worker(kernel) {
            Ok(()) => true,
            Err(_) => {
                self.shed.failed_forks += 1;
                false
            }
        }
    }

    fn reap_worker(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if let Some(w) = self.workers.pop() {
            match kernel.exit(w.pid) {
                // Already dead (fault-plan kill): the slot is simply gone.
                Err(SimError::NoSuchProcess(_)) => self.shed.shed_connections += 1,
                r => r?,
            }
        }
        Ok(())
    }

    /// The current worker pool size.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// The simulated key file on disk.
    #[must_use]
    pub fn pem_file(&self) -> FileId {
        self.pem_file
    }

    /// `apachectl graceful`: reap every worker, re-read the key file in the
    /// parent, and respawn the pool. On an unprotected machine each restart
    /// dumps a worker-pool's worth of key copies into free memory and loads
    /// fresh ones; the aligned levels re-install the single locked page.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn graceful_restart(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        let pool = self.workers.len().max(START_SERVERS);
        while !self.workers.is_empty() {
            self.reap_worker(kernel)?;
        }
        // Re-load the configuration, key file included.
        let level = self.config.level;
        let scattered = ScatteredKey::load(
            kernel,
            self.parent,
            self.pem_file,
            &self.material,
            level.nocache_pem(),
            level.align_key(),
        )?;
        if level.align_key() {
            // Retire the old region (shielded or plain), then re-install.
            if let Some(old) = self.region.take() {
                old.destroy(kernel, self.parent)?;
            }
            if let Some(old) = self.shield.take() {
                old.destroy(kernel, self.parent)?;
            }
            let region = SecureKeyRegion::install(kernel, self.parent, &self.key)?;
            scattered.zero_and_free(kernel, self.parent)?;
            if level.shield_key() {
                match ShieldedKeyRegion::wrap(kernel, self.parent, region, &mut self.rng) {
                    Ok(shield) => self.shield = Some(shield),
                    Err((region, e)) => {
                        let _ = region.destroy(kernel, self.parent);
                        return Err(e);
                    }
                }
            } else {
                self.region = Some(region);
            }
        } else {
            self.shared_struct = Some(scattered.rsa_struct_addr());
        }
        for _ in 0..pool {
            self.spawn_worker(kernel)?;
        }
        Ok(())
    }
}

impl SecureServer for ApacheServer {
    fn start(kernel: &mut Kernel, config: ServerConfig) -> SimResult<Self> {
        let mut rng = Rng64::new(config.seed ^ 0xA9AC_4E00);
        let key = RsaPrivateKey::generate(config.key_bits, &mut rng);
        let material = KeyMaterial::from_key(&key);
        let pem_file = kernel.create_file("/etc/apache2/ssl/server.key", material.pem_bytes());
        // The TLS key file is mode 0600, like the SSH host key.
        kernel.chmod_private(pem_file)?;

        let parent = kernel.spawn();
        let level = config.level;
        let scattered = ScatteredKey::load(
            kernel,
            parent,
            pem_file,
            &material,
            level.nocache_pem(),
            level.align_key(),
        )?;
        let (region, shield, shared_struct) = if level.align_key() {
            let region = SecureKeyRegion::install(kernel, parent, &key)?;
            scattered.zero_and_free(kernel, parent)?;
            if level.shield_key() {
                match ShieldedKeyRegion::wrap(kernel, parent, region, &mut rng) {
                    Ok(shield) => (None, Some(shield), None),
                    Err((region, e)) => {
                        let _ = region.destroy(kernel, parent);
                        return Err(e);
                    }
                }
            } else {
                (Some(region), None, None)
            }
        } else {
            (None, None, Some(scattered.rsa_struct_addr()))
        };

        let mut server = Self {
            config,
            key,
            material,
            pem_file,
            parent,
            region,
            shield,
            shared_struct,
            workers: Vec::new(),
            next_worker: 0,
            rng,
            handshakes: 0,
            shed: SheddingStats::default(),
            running: true,
        };
        for _ in 0..START_SERVERS {
            server.spawn_worker(kernel)?;
        }
        Ok(server)
    }

    fn set_concurrency(&mut self, kernel: &mut Kernel, n: usize) -> SimResult<()> {
        // Prefork keeps at least StartServers processes alive and grows the
        // pool to match concurrent demand. Growth is bounded — one spawn
        // attempt per missing slot, failures shed — so a fork-exhausted pool
        // settles below target and regrows on a later call.
        let target = n.clamp(START_SERVERS, MAX_CLIENTS);
        let missing = target.saturating_sub(self.workers.len());
        for _ in 0..missing {
            self.spawn_or_shed(kernel);
        }
        while self.workers.len() > target {
            self.reap_worker(kernel)?;
        }
        Ok(())
    }

    fn pump(&mut self, kernel: &mut Kernel, requests: usize) -> SimResult<()> {
        for _ in 0..requests {
            if self.workers.is_empty() && !self.spawn_or_shed(kernel) {
                // No pool and no way to grow one right now: this request is
                // dropped, like a listener backlog overflow.
                continue;
            }
            let idx = self.next_worker % self.workers.len();
            self.next_worker = self.next_worker.wrapping_add(1);
            let shared = self.shared_struct;
            let parent = self.parent;
            let material = self.material.clone_secret();
            let w = &mut self.workers[idx];
            let result = crate::engine::with_shield_open(&mut self.shield, kernel, parent, |k| {
                w.crypto.handshake(k, w.pid, shared, &material)
            });
            match result {
                Ok(()) => self.handshakes += 1,
                Err(_) => {
                    // Shed the failing worker — prefork reaps a crashed
                    // child and carries on.
                    self.shed.shed_handshakes += 1;
                    let pid = self.workers.swap_remove(idx).pid;
                    if kernel.alive(pid) {
                        let _ = kernel.exit(pid);
                    }
                    self.shed.shed_connections += 1;
                }
            }
        }
        Ok(())
    }

    fn transfer(&mut self, kernel: &mut Kernel, bytes: usize) -> SimResult<()> {
        if self.workers.is_empty() {
            self.spawn_worker(kernel)?;
        }
        let idx = self.rng.gen_index(self.workers.len());
        let pid = self.workers[idx].pid;
        crate::engine::move_data(kernel, pid, bytes, self.rng.next_u64())
    }

    fn stop(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if !self.running {
            return Ok(());
        }
        while !self.workers.is_empty() {
            self.reap_worker(kernel)?;
        }
        let parent_alive = kernel.alive(self.parent);
        if let Some(region) = self.region.take() {
            // A parent already killed by a fault took its mappings with it.
            if parent_alive {
                region.destroy(kernel, self.parent)?;
            }
        }
        if let Some(shield) = self.shield.take() {
            if parent_alive {
                shield.destroy(kernel, self.parent)?;
            }
        }
        if parent_alive {
            kernel.exit(self.parent)?;
        }
        self.running = false;
        Ok(())
    }

    fn config(&self) -> ServerConfig {
        self.config
    }

    fn restart(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        self.graceful_restart(kernel)
    }

    fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    fn material(&self) -> &KeyMaterial {
        &self.material
    }

    fn concurrency(&self) -> usize {
        self.workers.len()
    }

    fn is_running(&self) -> bool {
        self.running
    }

    fn name(&self) -> &'static str {
        "apache"
    }

    fn handshakes(&self) -> u64 {
        self.handshakes
    }

    fn shedding(&self) -> SheddingStats {
        self.shed
    }
}
