//! The simulated OpenSSH server: fork-per-connection, with the unprotected
//! configuration re-loading the host key for every connection (the default
//! re-exec behaviour the paper's `-r` option disables).

use crate::engine::{ScatteredKey, WorkerCrypto};
use crate::{SecureServer, ServerConfig, SheddingStats};
use keyguard::{SecureKeyRegion, ShieldedKeyRegion};
use memsim::{FileId, Kernel, Pid, SimError, SimResult};
use rsa_repro::material::KeyMaterial;
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;

/// One live SSH connection: a forked child process with its own crypto
/// state and (when unprotected) its own reloaded key copies.
struct Connection {
    pid: Pid,
    crypto: WorkerCrypto,
}

impl core::fmt::Debug for Connection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Connection(pid={:?}, key=<redacted>)", self.pid)
    }
}

/// Simulated OpenSSH 4.3p2.
///
/// See [`crate`] docs and [`SecureServer`] for the interface.
pub struct SshServer {
    config: ServerConfig,
    key: RsaPrivateKey,
    material: KeyMaterial,
    pem_file: FileId,
    daemon: Pid,
    /// The daemon's aligned key region, when the level calls for one
    /// (and does not call for the shielded wrapper instead).
    region: Option<SecureKeyRegion>,
    /// The shielded (prekey-encrypted) region at `ProtectionLevel::Shielded`:
    /// ciphertext at rest, opened only around each private-key operation.
    shield: Option<ShieldedKeyRegion>,
    connections: Vec<Connection>,
    rng: Rng64,
    handshakes: u64,
    shed: SheddingStats,
    running: bool,
}

/// Pages of private data/bss/stack a re-exec'd sshd child owns. When such a
/// child exits it frees far more pages than the allocator's hot list holds,
/// so its key-bearing pages spill to the cold list and linger unreused —
/// exactly why the paper keeps finding key copies in unallocated memory
/// while traffic is running.
const EXEC_IMAGE_BYTES: usize = 24 * memsim::PAGE_SIZE;

/// Holds the host key and its search material; `{:?}` reports daemon state only.
impl core::fmt::Debug for SshServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SshServer(connections={}, handshakes={}, running={}, key=<redacted>)",
            self.connections.len(),
            self.handshakes,
            self.running
        )
    }
}

impl SshServer {
    fn open_connection(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        let child = kernel.fork(self.daemon)?;
        match self.setup_connection(kernel, child) {
            Ok(crypto) => {
                self.handshakes += 1;
                self.connections.push(Connection { pid: child, crypto });
                Ok(())
            }
            Err(e) => {
                // The half-set-up child dies like a crashed sshd: a plain
                // exit, no cleanup of whatever it already wrote — the
                // error-path residue faultsweep scans for.
                if kernel.alive(child) {
                    let _ = kernel.exit(child);
                }
                Err(e)
            }
        }
    }

    fn setup_connection(&mut self, kernel: &mut Kernel, child: Pid) -> SimResult<WorkerCrypto> {
        let mut crypto = WorkerCrypto::with_protocol(
            self.key.clone_secret(),
            self.config.level,
            self.rng.next_u64(),
            crate::engine::Protocol::Ssh,
        );
        if !self.config.level.align_key() {
            // Without -r the child re-executes sshd and must re-read the
            // host key file: a fresh PEM buffer and six fresh BIGNUMs, all
            // doomed to be freed dirty at connection close.
            let _reload =
                ScatteredKey::load(kernel, child, self.pem_file, &self.material, false, false)?;
            // The re-exec also gives the child a private process image.
            let _image = kernel.heap_alloc(child, EXEC_IMAGE_BYTES)?;
        }
        // Key-exchange handshake happens at connection setup; a shielded
        // daemon opens its key region only for the duration of the op.
        crate::engine::with_shield_open(&mut self.shield, kernel, self.daemon, |k| {
            crypto.handshake(k, child, None, &self.material)
        })?;
        Ok(crypto)
    }

    /// Opens one connection, shedding (not propagating) any failure.
    fn open_or_shed(&mut self, kernel: &mut Kernel) -> bool {
        match self.open_connection(kernel) {
            Ok(()) => true,
            Err(_) => {
                self.shed.failed_forks += 1;
                false
            }
        }
    }

    fn close_connection(&mut self, kernel: &mut Kernel, idx: usize) -> SimResult<()> {
        let conn = self.connections.swap_remove(idx);
        match kernel.exit(conn.pid) {
            // The child already died (e.g. a fault-plan kill): the
            // connection is simply gone; note it and move on.
            Err(SimError::NoSuchProcess(_)) => {
                self.shed.shed_connections += 1;
                Ok(())
            }
            r => r,
        }
    }

    /// The simulated key file on disk.
    #[must_use]
    pub fn pem_file(&self) -> FileId {
        self.pem_file
    }
}

impl SecureServer for SshServer {
    fn start(kernel: &mut Kernel, config: ServerConfig) -> SimResult<Self> {
        let mut rng = Rng64::new(config.seed);
        let key = RsaPrivateKey::generate(config.key_bits, &mut rng);
        let material = KeyMaterial::from_key(&key);
        let pem_file = kernel.create_file("/etc/ssh/ssh_host_rsa_key", material.pem_bytes());
        // Host keys ship mode 0600: off-limits to the unprivileged disk scan.
        kernel.chmod_private(pem_file)?;

        let daemon = kernel.spawn();
        let level = config.level;
        // The listener loads the host key once at startup.
        let scattered = ScatteredKey::load(
            kernel,
            daemon,
            pem_file,
            &material,
            level.nocache_pem(),
            level.align_key(),
        )?;
        let (region, shield) = if level.align_key() {
            // RSA_memory_align: consolidate, then zero + free the originals.
            let region = SecureKeyRegion::install(kernel, daemon, &key)?;
            scattered.zero_and_free(kernel, daemon)?;
            if level.shield_key() {
                // sshkey_shield: encrypt the consolidated region at rest.
                match ShieldedKeyRegion::wrap(kernel, daemon, region, &mut rng) {
                    Ok(shield) => (None, Some(shield)),
                    Err((region, e)) => {
                        let _ = region.destroy(kernel, daemon);
                        return Err(e);
                    }
                }
            } else {
                (Some(region), None)
            }
        } else {
            (None, None)
        };

        Ok(Self {
            config,
            key,
            material,
            pem_file,
            daemon,
            region,
            shield,
            connections: Vec::new(),
            rng,
            handshakes: 0,
            shed: SheddingStats::default(),
            running: true,
        })
    }

    fn set_concurrency(&mut self, kernel: &mut Kernel, n: usize) -> SimResult<()> {
        while self.connections.len() > n {
            let last = self.connections.len() - 1;
            self.close_connection(kernel, last)?;
        }
        // Bounded: one attempt per missing slot. A failing attempt is shed
        // (the daemon keeps listening below target) instead of looping or
        // erroring; a later call retries once resources free up.
        let missing = n.saturating_sub(self.connections.len());
        for _ in 0..missing {
            self.open_or_shed(kernel);
        }
        Ok(())
    }

    fn pump(&mut self, kernel: &mut Kernel, requests: usize) -> SimResult<()> {
        for _ in 0..requests {
            if self.connections.is_empty() {
                // No standing concurrency: each transfer is its own
                // connect/transfer/disconnect cycle.
                if self.open_or_shed(kernel) {
                    self.close_connection(kernel, 0)?;
                }
                continue;
            }
            // scp churn: a replacement connection arrives, then the oldest
            // transfer finishes and its child exits — leaving the child's
            // pages dirty on the free lists until something reuses them.
            if self.open_or_shed(kernel) {
                self.close_connection(kernel, 0)?;
            }
            if self.connections.is_empty() {
                continue;
            }
            // Established connections also push data.
            let idx = self.rng.gen_index(self.connections.len());
            let daemon = self.daemon;
            let conn = &mut self.connections[idx];
            let result = crate::engine::with_shield_open(&mut self.shield, kernel, daemon, |k| {
                conn.crypto.handshake(k, conn.pid, None, &self.material)
            });
            match result {
                Ok(()) => self.handshakes += 1,
                Err(_) => {
                    // Shed the failing connection — like sshd reaping a
                    // crashed child — and keep serving the rest.
                    self.shed.shed_handshakes += 1;
                    let pid = self.connections.swap_remove(idx).pid;
                    if kernel.alive(pid) {
                        let _ = kernel.exit(pid);
                    }
                    self.shed.shed_connections += 1;
                }
            }
        }
        Ok(())
    }

    fn transfer(&mut self, kernel: &mut Kernel, bytes: usize) -> SimResult<()> {
        if self.connections.is_empty() {
            self.open_connection(kernel)?;
        }
        let idx = self.rng.gen_index(self.connections.len());
        let pid = self.connections[idx].pid;
        crate::engine::move_data(kernel, pid, bytes, self.rng.next_u64())
    }

    fn stop(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if !self.running {
            return Ok(());
        }
        self.set_concurrency(kernel, 0)?;
        let daemon_alive = kernel.alive(self.daemon);
        if let Some(region) = self.region.take() {
            // The library clears the special region before the daemon dies —
            // the "special care" the paper requires of aligned deployments.
            // A daemon already killed by a fault took its region mappings
            // with it; there is nothing left to wipe.
            if daemon_alive {
                region.destroy(kernel, self.daemon)?;
            }
        }
        if let Some(shield) = self.shield.take() {
            // Same discipline for the shielded wrapper: zero the prekey and
            // the (ciphertext) region before the daemon exits.
            if daemon_alive {
                shield.destroy(kernel, self.daemon)?;
            }
        }
        if daemon_alive {
            kernel.exit(self.daemon)?;
        }
        self.running = false;
        Ok(())
    }

    fn config(&self) -> ServerConfig {
        self.config
    }

    fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    fn material(&self) -> &KeyMaterial {
        &self.material
    }

    fn concurrency(&self) -> usize {
        self.connections.len()
    }

    fn is_running(&self) -> bool {
        self.running
    }

    fn name(&self) -> &'static str {
        "openssh"
    }

    fn handshakes(&self) -> u64 {
        self.handshakes
    }

    fn shedding(&self) -> SheddingStats {
        self.shed
    }
}
