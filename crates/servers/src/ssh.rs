//! The simulated OpenSSH server: fork-per-connection, with the unprotected
//! configuration re-loading the host key for every connection (the default
//! re-exec behaviour the paper's `-r` option disables).

use crate::engine::{ScatteredKey, WorkerCrypto};
use crate::{SecureServer, ServerConfig, SheddingStats, RETRY_BACKLOG_CAP, RETRY_BACKOFF_MAX};
use keyguard::{Custody, KeyRotation, SecureKeyRegion, ShieldedKeyRegion};
use memsim::{FileId, Kernel, Pid, SimError, SimResult};
use rsa_repro::material::KeyMaterial;
use rsa_repro::RsaPrivateKey;
use simrng::Rng64;

/// One live SSH connection: a forked child process with its own crypto
/// state and (when unprotected) its own reloaded key copies.
struct Connection {
    pid: Pid,
    crypto: WorkerCrypto,
    /// Key epoch the connection's handshake bound: a connection opened
    /// before a rotation drains on the old key.
    epoch: u64,
}

impl core::fmt::Debug for Connection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Connection(pid={:?}, epoch={}, key=<redacted>)",
            self.pid, self.epoch
        )
    }
}

/// Simulated OpenSSH 4.3p2.
///
/// See [`crate`] docs and [`SecureServer`] for the interface.
pub struct SshServer {
    config: ServerConfig,
    key: RsaPrivateKey,
    material: KeyMaterial,
    pem_file: FileId,
    daemon: Pid,
    /// The daemon's aligned key region, when the level calls for one
    /// (and does not call for the shielded wrapper instead).
    region: Option<SecureKeyRegion>,
    /// The shielded (prekey-encrypted) region at `ProtectionLevel::Shielded`:
    /// ciphertext at rest, opened only around each private-key operation.
    shield: Option<ShieldedKeyRegion>,
    /// The daemon's scattered key copies at unaligned levels, retained so a
    /// rotation can zero + free the predecessor's chunks at Retire.
    scattered: Option<ScatteredKey>,
    connections: Vec<Connection>,
    rng: Rng64,
    handshakes: u64,
    shed: SheddingStats,
    running: bool,
    /// Current key epoch ordinal (0 = boot key).
    epoch: u64,
    /// The in-flight rotation while the previous epoch drains.
    rotation: Option<KeyRotation>,
    /// Predecessor state held only during a drain window.
    old_scattered: Option<ScatteredKey>,
    old_material: Option<KeyMaterial>,
    old_pem: Option<FileId>,
    /// Bounded-backoff re-dial state for shed connections.
    retry_backlog: u64,
    retry_delay: u64,
    retry_backoff: u64,
}

/// Pages of private data/bss/stack a re-exec'd sshd child owns. When such a
/// child exits it frees far more pages than the allocator's hot list holds,
/// so its key-bearing pages spill to the cold list and linger unreused —
/// exactly why the paper keeps finding key copies in unallocated memory
/// while traffic is running.
const EXEC_IMAGE_BYTES: usize = 24 * memsim::PAGE_SIZE;

/// Holds the host key and its search material; `{:?}` reports daemon state only.
impl core::fmt::Debug for SshServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SshServer(connections={}, handshakes={}, running={}, key=<redacted>)",
            self.connections.len(),
            self.handshakes,
            self.running
        )
    }
}

impl SshServer {
    fn open_connection(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        let child = kernel.fork(self.daemon)?;
        match self.setup_connection(kernel, child) {
            Ok(crypto) => {
                self.handshakes += 1;
                self.connections.push(Connection {
                    pid: child,
                    crypto,
                    epoch: self.epoch,
                });
                Ok(())
            }
            Err(e) => {
                // The half-set-up child dies like a crashed sshd: a plain
                // exit, no cleanup of whatever it already wrote — the
                // error-path residue faultsweep scans for.
                if kernel.alive(child) {
                    let _ = kernel.exit(child);
                }
                Err(e)
            }
        }
    }

    fn setup_connection(&mut self, kernel: &mut Kernel, child: Pid) -> SimResult<WorkerCrypto> {
        let mut crypto = WorkerCrypto::with_protocol(
            self.key.clone_secret(),
            self.config.level,
            self.rng.next_u64(),
            crate::engine::Protocol::Ssh,
        );
        if !self.config.level.align_key() {
            // Without -r the child re-executes sshd and must re-read the
            // host key file: a fresh PEM buffer and six fresh BIGNUMs, all
            // doomed to be freed dirty at connection close.
            let _reload =
                ScatteredKey::load(kernel, child, self.pem_file, &self.material, false, false)?;
            // The re-exec also gives the child a private process image.
            let _image = kernel.heap_alloc(child, EXEC_IMAGE_BYTES)?;
        }
        // Key-exchange handshake happens at connection setup; a shielded
        // daemon opens its key region only for the duration of the op.
        crate::engine::with_shield_open(&mut self.shield, kernel, self.daemon, |k| {
            crypto.handshake(k, child, None, &self.material)
        })?;
        Ok(crypto)
    }

    /// Opens one connection, shedding (not propagating) any failure. A shed
    /// connection joins the bounded re-dial backlog.
    fn open_or_shed(&mut self, kernel: &mut Kernel) -> bool {
        match self.open_connection(kernel) {
            Ok(()) => true,
            Err(_) => {
                self.shed.failed_forks += 1;
                self.note_shed_for_retry();
                false
            }
        }
    }

    /// Remembers one shed connection for re-dialing, up to the cap.
    fn note_shed_for_retry(&mut self) {
        self.retry_backlog = (self.retry_backlog + 1).min(RETRY_BACKLOG_CAP);
    }

    /// One deterministic bounded-backoff re-dial step, run at the top of
    /// every `pump` call: after `retry_delay` pumps of silence, attempt to
    /// re-open one shed connection. Success recovers it and resets the
    /// backoff; failure doubles the backoff up to [`RETRY_BACKOFF_MAX`].
    fn retry_shed(&mut self, kernel: &mut Kernel) {
        if self.retry_backlog == 0 {
            return;
        }
        if self.retry_delay > 0 {
            self.retry_delay -= 1;
            return;
        }
        self.shed.retries += 1;
        if self.open_connection(kernel).is_ok() {
            self.shed.recovered += 1;
            self.retry_backlog -= 1;
            self.retry_backoff = 1;
        } else {
            self.retry_backoff = (self.retry_backoff * 2).min(RETRY_BACKOFF_MAX);
        }
        self.retry_delay = self.retry_backoff;
    }

    /// Retires the drain window once no connection remains on an old epoch.
    fn maybe_retire(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if self.rotation.is_some() && self.connections.iter().all(|c| c.epoch >= self.epoch) {
            self.retire_old(kernel)?;
        }
        Ok(())
    }

    /// Retire phase: zeroizes everything the predecessor key ever owned —
    /// its custody ([`keyguard::KeyRotation::retire`]), its scattered chunks
    /// at unaligned levels, and its on-disk PEM file (shredded in place,
    /// scrubbing any cached page-cache copies). No-op when not draining.
    ///
    /// **Retryable**: every teardown step can fault (zeroing writes break
    /// COW shares, the shred allocates page-cache frames), so on error the
    /// un-torn-down pieces are put back and the drain window stays open —
    /// the next quiesce point finishes the retirement. Nothing is ever
    /// stranded half-wiped.
    fn retire_old(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        let Some(mut rot) = self.rotation.take() else {
            return Ok(());
        };
        if kernel.alive(self.daemon) {
            if let Err(e) = rot.retire(kernel, self.daemon) {
                self.rotation = Some(rot);
                return Err(e);
            }
            if let Some(sk) = self.old_scattered.take() {
                if let Err((sk, e)) = sk.try_zero_and_free(kernel, self.daemon) {
                    self.old_scattered = Some(sk);
                    self.rotation = Some(rot);
                    return Err(e);
                }
            }
        } else {
            // A killed daemon took its mappings with it; a hardened kernel
            // zeroed the frames at unmap.
            rot.retire_dead();
            self.old_scattered = None;
        }
        if let Some(fid) = self.old_pem.take() {
            if let Err(e) = crate::engine::shred_file(kernel, fid) {
                self.old_pem = Some(fid);
                self.rotation = Some(rot);
                return Err(e);
            }
        }
        self.old_material = None;
        Ok(())
    }

    /// Bounds the drain window before a back-to-back rotation: any session
    /// still on an old epoch is terminated (sshd's rekey-limit behaviour),
    /// counted as a shed connection, and the predecessor retires.
    fn force_drain(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if self.rotation.is_none() {
            return Ok(());
        }
        while let Some(pos) = self.connections.iter().position(|c| c.epoch < self.epoch) {
            let was_alive = kernel.alive(self.connections[pos].pid);
            self.close_connection(kernel, pos)?;
            if was_alive {
                self.shed.shed_connections += 1;
                self.note_shed_for_retry();
            }
        }
        self.retire_old(kernel)
    }

    fn close_connection(&mut self, kernel: &mut Kernel, idx: usize) -> SimResult<()> {
        let conn = self.connections.swap_remove(idx);
        match kernel.exit(conn.pid) {
            // The child already died (e.g. a fault-plan kill): the
            // connection is simply gone; note it and move on.
            Err(SimError::NoSuchProcess(_)) => {
                self.shed.shed_connections += 1;
                Ok(())
            }
            r => r,
        }
    }

    /// The simulated key file on disk.
    #[must_use]
    pub fn pem_file(&self) -> FileId {
        self.pem_file
    }
}

impl SecureServer for SshServer {
    fn start(kernel: &mut Kernel, config: ServerConfig) -> SimResult<Self> {
        let mut rng = Rng64::new(config.seed);
        let key = RsaPrivateKey::generate(config.key_bits, &mut rng);
        let material = KeyMaterial::from_key(&key);
        let pem_file = kernel.create_file("/etc/ssh/ssh_host_rsa_key", material.pem_bytes());
        // Host keys ship mode 0600: off-limits to the unprivileged disk scan.
        kernel.chmod_private(pem_file)?;

        let daemon = kernel.spawn();
        let level = config.level;
        // The listener loads the host key once at startup.
        let scattered = ScatteredKey::load(
            kernel,
            daemon,
            pem_file,
            &material,
            level.nocache_pem(),
            level.align_key(),
        )?;
        let (region, shield, scattered) = if level.align_key() {
            // RSA_memory_align: consolidate, then zero + free the originals.
            let region = SecureKeyRegion::install(kernel, daemon, &key)?;
            scattered.zero_and_free(kernel, daemon)?;
            if level.shield_key() {
                // sshkey_shield: encrypt the consolidated region at rest.
                match ShieldedKeyRegion::wrap(kernel, daemon, region, &mut rng) {
                    Ok(shield) => (None, Some(shield), None),
                    Err((region, e)) => {
                        let _ = region.destroy(kernel, daemon);
                        return Err(e);
                    }
                }
            } else {
                (Some(region), None, None)
            }
        } else {
            // Keep the handle: a later rotation retires these chunks.
            (None, None, Some(scattered))
        };

        Ok(Self {
            config,
            key,
            material,
            pem_file,
            daemon,
            region,
            shield,
            scattered,
            connections: Vec::new(),
            rng,
            handshakes: 0,
            shed: SheddingStats::default(),
            running: true,
            epoch: 0,
            rotation: None,
            old_scattered: None,
            old_material: None,
            old_pem: None,
            retry_backlog: 0,
            retry_delay: 0,
            retry_backoff: 1,
        })
    }

    fn set_concurrency(&mut self, kernel: &mut Kernel, n: usize) -> SimResult<()> {
        while self.connections.len() > n {
            let last = self.connections.len() - 1;
            self.close_connection(kernel, last)?;
        }
        // Bounded: one attempt per missing slot. A failing attempt is shed
        // (the daemon keeps listening below target) instead of looping or
        // erroring; a later call retries once resources free up.
        let missing = n.saturating_sub(self.connections.len());
        for _ in 0..missing {
            self.open_or_shed(kernel);
        }
        self.maybe_retire(kernel)
    }

    fn pump(&mut self, kernel: &mut Kernel, requests: usize) -> SimResult<()> {
        self.retry_shed(kernel);
        for _ in 0..requests {
            if self.connections.is_empty() {
                // No standing concurrency: each transfer is its own
                // connect/transfer/disconnect cycle.
                if self.open_or_shed(kernel) {
                    self.close_connection(kernel, 0)?;
                }
                continue;
            }
            // scp churn: a replacement connection arrives, then the oldest
            // transfer finishes and its child exits — leaving the child's
            // pages dirty on the free lists until something reuses them.
            // Mid-drain the oldest is always a pre-rotation connection
            // (swap_remove reorders the list, so find one explicitly); this
            // is what lets a rotation drain to Retire under churn.
            if self.open_or_shed(kernel) {
                let victim = self
                    .connections
                    .iter()
                    .position(|c| c.epoch < self.epoch)
                    .unwrap_or(0);
                self.close_connection(kernel, victim)?;
            }
            if self.connections.is_empty() {
                continue;
            }
            // Established connections also push data. A connection opened
            // before a rotation drains on its own epoch's key material.
            let idx = self.rng.gen_index(self.connections.len());
            let daemon = self.daemon;
            let current_epoch = self.epoch;
            let conn = &mut self.connections[idx];
            let material = if conn.epoch < current_epoch {
                self.old_material.as_ref().unwrap_or(&self.material)
            } else {
                &self.material
            };
            let result = crate::engine::with_shield_open(&mut self.shield, kernel, daemon, |k| {
                conn.crypto.handshake(k, conn.pid, None, material)
            });
            match result {
                Ok(()) => self.handshakes += 1,
                Err(_) => {
                    // Shed the failing connection — like sshd reaping a
                    // crashed child — and keep serving the rest.
                    self.shed.shed_handshakes += 1;
                    let pid = self.connections.swap_remove(idx).pid;
                    if kernel.alive(pid) {
                        let _ = kernel.exit(pid);
                    }
                    self.shed.shed_connections += 1;
                    self.note_shed_for_retry();
                }
            }
        }
        self.maybe_retire(kernel)
    }

    fn transfer(&mut self, kernel: &mut Kernel, bytes: usize) -> SimResult<()> {
        if self.connections.is_empty() {
            self.open_connection(kernel)?;
        }
        let idx = self.rng.gen_index(self.connections.len());
        let pid = self.connections[idx].pid;
        crate::engine::move_data(kernel, pid, bytes, self.rng.next_u64())
    }

    fn stop(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        if !self.running {
            return Ok(());
        }
        self.set_concurrency(kernel, 0)?;
        // Backstop: an open drain window retires before shutdown (covers a
        // daemon already killed mid-drain, where maybe_retire could not run
        // its live path).
        self.retire_old(kernel)?;
        let daemon_alive = kernel.alive(self.daemon);
        if let Some(region) = self.region.take() {
            // The library clears the special region before the daemon dies —
            // the "special care" the paper requires of aligned deployments.
            // A daemon already killed by a fault took its region mappings
            // with it; there is nothing left to wipe.
            if daemon_alive {
                region.destroy(kernel, self.daemon)?;
            }
        }
        if let Some(shield) = self.shield.take() {
            // Same discipline for the shielded wrapper: zero the prekey and
            // the (ciphertext) region before the daemon exits.
            if daemon_alive {
                shield.destroy(kernel, self.daemon)?;
            }
        }
        if daemon_alive {
            kernel.exit(self.daemon)?;
        }
        self.running = false;
        Ok(())
    }

    fn config(&self) -> ServerConfig {
        self.config
    }

    fn rotate_key(&mut self, kernel: &mut Kernel) -> SimResult<u64> {
        if !self.running || !kernel.alive(self.daemon) {
            return Err(SimError::NoSuchProcess(self.daemon));
        }
        // Bound the drain window: a back-to-back rotation finishes the
        // previous epoch's drain before starting its own.
        self.force_drain(kernel)?;

        let ordinal = self.epoch + 1;
        let level = self.config.level;
        // Generate: host-side only, deterministic in (config, ordinal).
        let new_key = self.config.derive_rotated_key("openssh", ordinal);
        let new_material = KeyMaterial::from_key(&new_key);

        // Install: the successor's protected home. Transactional — on error
        // the old key is untouched and no successor byte is resident.
        let mut rot = KeyRotation::begin(level, ordinal);
        rot.install(kernel, self.daemon, &new_key, &mut self.rng)?;

        // The successor key file replaces the old path, mode 0600. Creation
        // places nothing in simulated memory, so it cannot leak on failure.
        let new_pem = kernel.create_file("/etc/ssh/ssh_host_rsa_key", new_material.pem_bytes());
        if let Err(e) = kernel.chmod_private(new_pem) {
            let _ = rot.abort(kernel, self.daemon);
            return Err(e);
        }

        // The daemon's scattered home at unaligned levels — rolled back as a
        // unit on failure, keeping "old key fully live" true.
        let new_scattered = if level.align_key() {
            None
        } else {
            match ScatteredKey::load_transactional(
                kernel,
                self.daemon,
                new_pem,
                &new_material,
                level.nocache_pem(),
            ) {
                Ok(sk) => Some(sk),
                Err(e) => {
                    let _ = crate::engine::shred_file(kernel, new_pem);
                    let _ = rot.abort(kernel, self.daemon);
                    return Err(e);
                }
            }
        };

        // Activate: the atomic in-memory switch — new handshakes bind the
        // successor from here on; nothing below this point can fail in a way
        // that splits the two-key state.
        let outgoing = Custody::from_parts(self.region.take(), self.shield.take());
        let (region, shield) = match rot.activate(outgoing) {
            Some(custody) => custody.into_parts(),
            None => (None, None),
        };
        self.region = region;
        self.shield = shield;
        self.old_scattered = self.scattered.take();
        self.scattered = new_scattered;
        self.old_material = Some(core::mem::replace(&mut self.material, new_material));
        self.old_pem = Some(core::mem::replace(&mut self.pem_file, new_pem));
        self.key = new_key;
        self.epoch = ordinal;

        // Drain: in-flight sessions finish on the old key.
        rot.begin_drain();
        self.rotation = Some(rot);
        // An idle listener retires the predecessor immediately.
        self.maybe_retire(kernel)?;
        Ok(ordinal)
    }

    fn key_epoch(&self) -> u64 {
        self.epoch
    }

    fn draining(&self) -> bool {
        self.rotation.is_some()
    }

    fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    fn material(&self) -> &KeyMaterial {
        &self.material
    }

    fn concurrency(&self) -> usize {
        self.connections.len()
    }

    fn is_running(&self) -> bool {
        self.running
    }

    fn name(&self) -> &'static str {
        "openssh"
    }

    fn handshakes(&self) -> u64 {
        self.handshakes
    }

    fn shedding(&self) -> SheddingStats {
        self.shed
    }
}
