//! Simulated network servers whose key-handling behaviour reproduces the
//! memory traces of Section 3 of the paper.
//!
//! Two servers are modeled on top of [`memsim`]:
//!
//! * [`SshServer`] — OpenSSH 4.3p2-style: the listener loads the host key at
//!   startup and, for every incoming connection, forks a child that (without
//!   the `-r` option) *re-loads the private key file* and performs the RSA
//!   handshake before exiting. This per-connection reload is what floods
//!   memory with key copies as connection counts grow.
//! * [`ApacheServer`] — Apache 2.0 prefork + mod_ssl: the parent loads the
//!   key once, then forks a pool of worker processes that scales with load.
//!   Each worker's first private-key operation dirties the heap page holding
//!   the key BIGNUMs (breaking copy-on-write and duplicating d, P, Q) and —
//!   with `RSA_FLAG_CACHE_PRIVATE` set — caches Montgomery contexts holding
//!   fresh copies of P and Q. Reaped idle workers dump all of it into
//!   unallocated memory.
//!
//! Every protection level of [`keyguard::ProtectionLevel`] can be applied,
//! changing exactly what the paper's patches changed: key consolidation +
//! mlock + no Montgomery caching (application/library), kernel zeroing
//! (kernel), and `O_NOCACHE` for the PEM file (integrated).
//!
//! # Examples
//!
//! ```
//! use keyguard::ProtectionLevel;
//! use memsim::{Kernel, MachineConfig};
//! use servers::{ServerConfig, SecureServer, SshServer};
//!
//! let mut kernel = Kernel::new(MachineConfig::small());
//! let cfg = ServerConfig::new(ProtectionLevel::None).with_key_bits(128);
//! let mut ssh = SshServer::start(&mut kernel, cfg)?;
//! ssh.set_concurrency(&mut kernel, 4)?;
//! ssh.pump(&mut kernel, 8)?; // eight completed transfers
//! ssh.stop(&mut kernel)?;
//! # Ok::<(), memsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apache;
mod engine;
mod ssh;

pub use apache::ApacheServer;
pub use engine::{Protocol, ScatteredKey, WorkerCrypto};
pub use ssh::SshServer;

use keyguard::ProtectionLevel;
use memsim::{Kernel, SimResult};
use rsa_repro::material::KeyMaterial;
use rsa_repro::RsaPrivateKey;

/// Counters for work a server shed on its error paths instead of letting a
/// [`memsim::SimError`] escape `pump`/`set_concurrency`.
///
/// A production daemon that cannot fork a child logs the failure, drops that
/// connection, and keeps serving; these counters make the simulated servers'
/// equivalent behaviour observable (they are surfaced in timeline output and
/// checked by the `faultsweep` harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SheddingStats {
    /// Connections (SSH) or workers (Apache) never opened because `fork` or
    /// per-connection setup failed.
    pub failed_forks: u64,
    /// Live connections/workers dropped after a fault hit them mid-operation
    /// (their process is terminated and removed from the pool).
    pub shed_connections: u64,
    /// Handshakes abandoned because of a fault.
    pub shed_handshakes: u64,
    /// Bounded-backoff re-dial attempts made for previously shed
    /// connections (each attempt counts, successful or not).
    pub retries: u64,
    /// Shed connections brought back by a successful retry.
    pub recovered: u64,
}

impl SheddingStats {
    /// Total shed events of any kind (retry bookkeeping is separate: a
    /// retry is recovery work, not a shed event).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.failed_forks + self.shed_connections + self.shed_handshakes
    }
}

/// Most shed connections a server remembers for re-dialing. Sheds beyond
/// the cap are permanently dropped (the client gave up), which keeps the
/// retry loop bounded under sustained fault pressure.
pub const RETRY_BACKLOG_CAP: u64 = 16;

/// Ceiling for the deterministic exponential backoff between re-dial
/// attempts, measured in `pump` calls (1, 2, 4, 8, 8, ...).
pub const RETRY_BACKOFF_MAX: u64 = 8;

/// Configuration shared by both servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Countermeasure level to deploy.
    pub level: ProtectionLevel,
    /// RSA modulus size in bits (the paper uses 1024).
    pub key_bits: usize,
    /// Seed for key generation and handshake randomness.
    pub seed: u64,
}

impl ServerConfig {
    /// A configuration at the given protection level with paper-style
    /// defaults (1024-bit key).
    #[must_use]
    pub fn new(level: ProtectionLevel) -> Self {
        Self {
            level,
            key_bits: 1024,
            seed: 0xD51_2007,
        }
    }

    /// Overrides the key size (small keys make tests fast).
    #[must_use]
    pub fn with_key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Overrides the randomness seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derives the private key a server with this configuration will use.
    ///
    /// Key generation is deterministic in the configuration, so experiment
    /// harnesses can build scanners for a server's key *before* the server
    /// is started (e.g. to scan the machine at timeline ticks preceding
    /// server startup).
    #[must_use]
    pub fn derive_key(&self, server_name: &str) -> RsaPrivateKey {
        self.derive_rotated_key(server_name, 0)
    }

    /// Derives the key a server with this configuration uses at rotation
    /// ordinal `ordinal` (0 = the boot key, 1 = the first successor, ...).
    ///
    /// Like [`Self::derive_key`], this is a pure function of the
    /// configuration, so sweep harnesses and scanners know every epoch's
    /// key before the server rotates to it.
    #[must_use]
    pub fn derive_rotated_key(&self, server_name: &str, ordinal: u64) -> RsaPrivateKey {
        let salt = match server_name {
            "apache" => 0xA9AC_4E00,
            _ => 0,
        };
        // Ordinal 0 must reproduce the historical derive_key stream.
        let rotation = if ordinal == 0 {
            0
        } else {
            (0x07A7_E000 + ordinal).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let mut rng = simrng::Rng64::new(self.seed ^ salt ^ rotation);
        RsaPrivateKey::generate(self.key_bits, &mut rng)
    }
}

/// Common interface of the simulated servers, used by the experiment
/// harness to sweep both.
pub trait SecureServer: Sized {
    /// Boots the server on the simulated machine: creates the PEM key file,
    /// spawns the daemon process, and loads the key according to the
    /// configured protection level.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (out of memory, etc.).
    fn start(kernel: &mut Kernel, config: ServerConfig) -> SimResult<Self>;

    /// Adjusts the number of concurrently open connections. For SSH this
    /// forks/reaps per-connection children; for Apache it grows/shrinks the
    /// worker pool.
    ///
    /// A failure to open one connection (fork refused, allocation failure in
    /// per-connection setup) is **shed** — counted in [`Self::shedding`] and
    /// skipped — so a fork-exhausted server converges below the requested
    /// concurrency instead of erroring out, and recovers on a later call
    /// once resources free up.
    ///
    /// # Errors
    ///
    /// Propagates non-recoverable simulator errors (teardown failures).
    fn set_concurrency(&mut self, kernel: &mut Kernel, n: usize) -> SimResult<()>;

    /// Completes `requests` transfer cycles at the current concurrency —
    /// each one a full RSA handshake plus data movement. For SSH a completed
    /// transfer closes its connection and a fresh one replaces it (scp
    /// churn); for Apache a worker serves the request and stays alive.
    ///
    /// A fault during one request — fork refused, a worker killed or failing
    /// mid-handshake — **sheds that connection/worker** (terminating its
    /// process, counting the event in [`Self::shedding`]) and keeps serving
    /// the remaining requests; per-connection faults never escape `pump`.
    ///
    /// # Errors
    ///
    /// Propagates non-recoverable simulator errors.
    fn pump(&mut self, kernel: &mut Kernel, requests: usize) -> SimResult<()>;

    /// Moves `bytes` of payload through one live connection's channel
    /// buffer — the data-plane half of an scp or HTTPS transfer, used by the
    /// performance benchmarks. Opens a transient connection when none is
    /// live.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    fn transfer(&mut self, kernel: &mut Kernel, bytes: usize) -> SimResult<()>;

    /// Stops the server, terminating every process it owns.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    fn stop(&mut self, kernel: &mut Kernel) -> SimResult<()>;

    /// The configuration the server was started with.
    fn config(&self) -> ServerConfig;

    /// Restarts the server: by default a full stop + start
    /// (`/etc/init.d/<svc> restart`); Apache overrides this with its
    /// pool-preserving graceful reload.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    fn restart(&mut self, kernel: &mut Kernel) -> SimResult<()> {
        self.stop(kernel)?;
        *self = Self::start(kernel, self.config())?;
        Ok(())
    }

    /// Rotates the server to its next key epoch with no dropped traffic:
    /// the crash-consistent `Generate → Install → Activate → Drain →
    /// Retire` lifecycle of [`keyguard::KeyRotation`]. On return the new
    /// key serves all fresh handshakes; connections opened before the call
    /// drain on engines that own the old key, and the old key's custody is
    /// zeroized ([`keyguard::RotationPhase::Retire`]) as soon as the last
    /// of them closes (immediately, on an idle server).
    ///
    /// **Crash-consistent**: a fault injected at any operation index leaves
    /// the server in exactly one of {old key fully live, new key fully
    /// live} — an install-phase failure unwinds the successor completely
    /// and returns the error with the old key untouched.
    ///
    /// Returns the new key epoch ordinal (1 for the first rotation).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; on error the old key is still live.
    fn rotate_key(&mut self, kernel: &mut Kernel) -> SimResult<u64>;

    /// The current key epoch ordinal (0 until the first rotation).
    fn key_epoch(&self) -> u64 {
        0
    }

    /// Whether a previous key epoch is still draining (both keys resident).
    fn draining(&self) -> bool {
        false
    }

    /// The server's private key.
    fn key(&self) -> &RsaPrivateKey;

    /// The searchable key material derived from the key.
    fn material(&self) -> &KeyMaterial;

    /// Current number of open connections (SSH) or busy-capable workers
    /// (Apache).
    fn concurrency(&self) -> usize;

    /// Whether the server is running.
    fn is_running(&self) -> bool;

    /// Human-readable name (`"openssh"` / `"apache"`).
    fn name(&self) -> &'static str;

    /// Total handshakes performed since start.
    fn handshakes(&self) -> u64;

    /// Work shed on error paths since start (failed forks, dropped
    /// connections, abandoned handshakes). `pump` and `set_concurrency`
    /// absorb per-connection faults by shedding the affected connection and
    /// continuing; these counters are how that absorption stays observable.
    fn shedding(&self) -> SheddingStats {
        SheddingStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = ServerConfig::new(ProtectionLevel::Kernel)
            .with_key_bits(256)
            .with_seed(42);
        assert_eq!(c.level, ProtectionLevel::Kernel);
        assert_eq!(c.key_bits, 256);
        assert_eq!(c.seed, 42);
        assert_eq!(ServerConfig::new(ProtectionLevel::None).key_bits, 1024);
    }
}
