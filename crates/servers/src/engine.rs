//! The copy-site model: where OpenSSL-era key handling actually puts key
//! bytes in process memory.
//!
//! Every function here pairs *real cryptographic computation* (host-side
//! bignum math, verified end-to-end) with *explicit placement* of the byte
//! images that the corresponding OpenSSL code would leave in the process
//! heap: the PEM read buffer, the six decoded BIGNUMs, the cached Montgomery
//! contexts (copies of P and Q), and per-connection session buffers.

use keyguard::ProtectionLevel;
use memsim::{FileId, Kernel, Pid, SimError, SimResult, VAddr};
use rsa_repro::material::KeyMaterial;
use rsa_repro::{CrtEngine, RsaPrivateKey};
use simrng::Rng64;
use wireproto::{ssh, tls, SecureChannel};

/// Which wire protocol a server's handshakes follow — the two asymmetric
/// usage shapes of the paper's victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// SSH: the host key signs the key-exchange hash.
    Ssh,
    /// TLS-RSA (mod_ssl): the server key decrypts the premaster secret.
    Tls,
}

/// Size of the per-connection transfer buffer (an SSL/SSH channel buffer).
pub(crate) const SESSION_BUF: usize = 8 * 1024;

/// Streams `bytes` of payload through a channel buffer in `pid`'s heap:
/// allocate once, fill it chunk by chunk (real memory traffic through the
/// simulated machine), free it dirty at the end.
pub(crate) fn move_data(kernel: &mut Kernel, pid: Pid, bytes: usize, seed: u64) -> memsim::SimResult<()> {
    let buf = kernel.heap_alloc(pid, SESSION_BUF)?;
    let mut chunk = vec![0u8; SESSION_BUF];
    let mut remaining = bytes;
    let mut x = seed | 1;
    while remaining > 0 {
        let n = remaining.min(SESSION_BUF);
        // Cheap xorshift keystream so pages carry unique, non-key content.
        for b in chunk[..n].iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        kernel.write_bytes(pid, buf, &chunk[..n])?;
        remaining -= n;
    }
    kernel.heap_free(pid, buf)
}

/// Runs `f` with the server's shielded key region (if any) temporarily
/// decrypted — the OpenSSH `sshkey_shield`/`unshield` window around each
/// private-key operation. The region is re-encrypted before this returns,
/// success or failure; with no shield installed it is a plain call.
pub(crate) fn with_shield_open<T>(
    shield: &mut Option<keyguard::ShieldedKeyRegion>,
    kernel: &mut Kernel,
    owner: Pid,
    f: impl FnOnce(&mut Kernel) -> SimResult<T>,
) -> SimResult<T> {
    match shield.as_mut() {
        Some(s) => s.with_unshielded(kernel, owner, f),
        None => f(kernel),
    }
}

/// Overwrites a whole file with zeros — the shred a retiring key epoch
/// applies to its PEM file. Writing through the page cache scrubs any
/// still-cached pages of the old contents in place (and marks them dirty,
/// so a later writeback flushes zeros to the backing store too).
///
/// # Errors
///
/// Propagates simulator errors (a faulted cache-frame allocation). No
/// error path places file bytes in memory: each cache page is zeroed
/// within the same step that fills it.
pub(crate) fn shred_file(kernel: &mut Kernel, fid: FileId) -> memsim::SimResult<()> {
    let len = kernel.file_len(fid)?;
    if len == 0 {
        return Ok(());
    }
    kernel.write_file(fid, 0, &vec![0u8; len])
}

/// The scattered in-heap home of a freshly loaded key: what
/// `d2i_RSAPrivateKey` leaves behind.
#[derive(Debug, Clone)]
pub struct ScatteredKey {
    /// The small RSA struct chunk — the thing workers write to (flags,
    /// cached pointers), dirtying the page that also holds the BIGNUMs.
    rsa_struct: VAddr,
    /// `(component name, chunk address)` for the six BIGNUM data buffers.
    chunks: Vec<(&'static str, VAddr)>,
}

impl ScatteredKey {
    /// Reads the PEM key file and "decodes" it: allocates the RSA struct and
    /// the six BIGNUM chunks in `pid`'s heap and writes the component byte
    /// images into them. The PEM read buffer is freed afterwards — zeroed
    /// only when `zero_pem_buffer` is set (the hygiene the paper's library
    /// patch adds; stock OpenSSL leaves the bytes in the freed chunk).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn load(
        kernel: &mut Kernel,
        pid: Pid,
        pem_file: FileId,
        material: &KeyMaterial,
        nocache: bool,
        zero_pem_buffer: bool,
    ) -> SimResult<Self> {
        // read() the key file into a heap buffer (populating the page cache
        // unless O_NOCACHE).
        let (pem_buf, _len) = kernel.read_file(pid, pem_file, nocache)?;

        // d2i: allocate the RSA struct, then each BIGNUM's data buffer.
        let rsa_struct = kernel.heap_alloc(pid, 64)?;
        let parts: [(&'static str, &[u8]); 6] = [
            ("d", material.d_bytes()),
            ("p", material.p_bytes()),
            ("q", material.q_bytes()),
            // dp/dq/qinv are real allocations too, but their byte images are
            // not among the paper's four searched patterns; sizing them like
            // p keeps the heap geometry honest.
            ("dp", material.p_bytes()),
            ("dq", material.q_bytes()),
            ("qinv", material.q_bytes()),
        ];
        let mut chunks = Vec::with_capacity(6);
        for (name, bytes) in parts {
            let addr = kernel.heap_alloc(pid, bytes.len())?;
            match name {
                // Only d, p, q hold their true images; the derived parts get
                // distinct filler so they never false-positive as p/q.
                "d" | "p" | "q" => kernel.write_bytes(pid, addr, bytes)?,
                _ => {
                    let filler = vec![0xC3u8; bytes.len()];
                    kernel.write_bytes(pid, addr, &filler)?;
                }
            }
            chunks.push((name, addr));
        }

        // The PEM buffer has been consumed by the decode.
        if zero_pem_buffer {
            kernel.heap_free_zeroed(pid, pem_buf)?;
        } else {
            kernel.heap_free(pid, pem_buf)?;
        }
        Ok(Self { rsa_struct, chunks })
    }

    /// [`Self::load`] with rollback: any mid-step failure zeroes and frees
    /// every chunk (and the PEM buffer) already placed before the error is
    /// returned, leaving memory exactly as scanned-clean as before the
    /// call. The key-rotation path uses this so a faulted reload of the
    /// successor key cannot strand successor bytes next to the still-live
    /// predecessor.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn load_transactional(
        kernel: &mut Kernel,
        pid: Pid,
        pem_file: FileId,
        material: &KeyMaterial,
        nocache: bool,
    ) -> SimResult<Self> {
        let (pem_buf, _len) = kernel.read_file(pid, pem_file, nocache)?;
        let mut placed: Vec<VAddr> = vec![pem_buf];
        let unwind = |kernel: &mut Kernel, placed: &[VAddr]| {
            for &addr in placed {
                let _ = kernel.heap_free_zeroed(pid, addr);
            }
        };
        let rsa_struct = match kernel.heap_alloc(pid, 64) {
            Ok(a) => a,
            Err(e) => {
                unwind(kernel, &placed);
                return Err(e);
            }
        };
        placed.push(rsa_struct);
        let parts: [(&'static str, &[u8]); 6] = [
            ("d", material.d_bytes()),
            ("p", material.p_bytes()),
            ("q", material.q_bytes()),
            ("dp", material.p_bytes()),
            ("dq", material.q_bytes()),
            ("qinv", material.q_bytes()),
        ];
        let mut chunks = Vec::with_capacity(6);
        for (name, bytes) in parts {
            let step = (|| {
                let addr = kernel.heap_alloc(pid, bytes.len())?;
                // Track before writing so a faulted write is unwound too.
                placed.push(addr);
                match name {
                    "d" | "p" | "q" => kernel.write_bytes(pid, addr, bytes)?,
                    _ => {
                        let filler = vec![0xC3u8; bytes.len()];
                        kernel.write_bytes(pid, addr, &filler)?;
                    }
                }
                Ok(addr)
            })();
            match step {
                Ok(addr) => chunks.push((name, addr)),
                Err(e) => {
                    unwind(kernel, &placed);
                    return Err(e);
                }
            }
        }
        // The PEM buffer has been consumed by the decode: the rotation
        // path always clears it, whatever the level (library hygiene).
        kernel.heap_free_zeroed(pid, pem_buf)?;
        Ok(Self { rsa_struct, chunks })
    }

    /// Address of the RSA struct chunk (shared COW with forked workers; the
    /// first write from a worker duplicates the page and every key byte on
    /// it).
    #[must_use]
    pub fn rsa_struct_addr(&self) -> VAddr {
        self.rsa_struct
    }

    /// The `memset(0) + free` pass `RSA_memory_align()` applies to the
    /// original scattered buffers once the key has moved to its secure
    /// region.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn zero_and_free(self, kernel: &mut Kernel, pid: Pid) -> SimResult<()> {
        self.try_zero_and_free(kernel, pid).map_err(|(_, e)| e)
    }

    /// Like [`Self::zero_and_free`], but returns the handle (minus the
    /// chunks already freed) alongside the error on failure, so the caller
    /// can retry. The zeroing writes are fallible — a COW-shared heap page
    /// breaks its share first, and that allocation can fail — and losing
    /// the chunk addresses on such a failure would strand key bytes in
    /// still-allocated heap forever.
    ///
    /// # Errors
    ///
    /// Returns `(self, error)`; already-freed chunks are dropped from the
    /// handle so a retry never double-frees.
    pub fn try_zero_and_free(
        mut self,
        kernel: &mut Kernel,
        pid: Pid,
    ) -> Result<(), (Self, SimError)> {
        while let Some(&(_, addr)) = self.chunks.last() {
            if let Err(e) = kernel.heap_free_zeroed(pid, addr) {
                return Err((self, e));
            }
            self.chunks.pop();
        }
        // The struct itself stays alive in real OpenSSL; it holds no key
        // bytes, so keeping it allocated is harmless and faithful.
        Ok(())
    }
}

/// Per-process cryptographic state: a real CRT engine plus the simulated
/// heap footprint of its Montgomery caches.
pub struct WorkerCrypto {
    engine: CrtEngine,
    protocol: Protocol,
    rng: Rng64,
    /// Sim-heap chunks holding the cached copies of P and Q, once built.
    mont_chunks: Option<(VAddr, VAddr)>,
    /// Whether this worker has already dirtied the shared key page.
    cow_poked: bool,
}

/// The wrapped engine holds the key; `{:?}` reports only configuration.
impl core::fmt::Debug for WorkerCrypto {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "WorkerCrypto({:?}, cow_poked={}, key=<redacted>)",
            self.protocol, self.cow_poked
        )
    }
}

impl WorkerCrypto {
    /// Creates the per-worker engine. `level.disable_mont_cache()` decides
    /// whether `RSA_FLAG_CACHE_PRIVATE` stays set.
    #[must_use]
    pub fn new(key: RsaPrivateKey, level: ProtectionLevel, seed: u64) -> Self {
        Self::with_protocol(key, level, seed, Protocol::Tls)
    }

    /// Creates an engine following a specific wire protocol.
    #[must_use]
    pub fn with_protocol(
        key: RsaPrivateKey,
        level: ProtectionLevel,
        seed: u64,
        protocol: Protocol,
    ) -> Self {
        Self {
            engine: CrtEngine::new(key, !level.disable_mont_cache()),
            protocol,
            rng: Rng64::new(seed),
            mont_chunks: None,
            cow_poked: false,
        }
    }

    /// The wire protocol this worker speaks.
    #[must_use]
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of private-key operations this worker has performed.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.engine.ops()
    }

    /// One full handshake in process `pid`:
    ///
    /// 1. (first op only, unprotected) write to the shared RSA struct,
    ///    breaking COW on the page holding the key BIGNUMs;
    /// 2. (first op only, caching enabled) build the Montgomery contexts and
    ///    place their copies of P and Q in this worker's heap;
    /// 3. decrypt a PKCS#1-padded session key — real math, verified;
    /// 4. move a transfer's worth of data through a session buffer, then
    ///    free it (contents linger, as `free` does not clear).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors. Panics only if the RSA decrypt
    /// round-trip fails, which would be a bug in the crypto stack.
    pub fn handshake(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        shared_struct: Option<VAddr>,
        material: &KeyMaterial,
    ) -> SimResult<()> {
        // (1) Dirty the shared key page, once.
        if !self.cow_poked {
            if let Some(addr) = shared_struct {
                kernel.write_bytes(pid, addr, &1u64.to_le_bytes())?;
            }
            self.cow_poked = true;
        }

        // (2) Montgomery cache construction on first use.
        if self.engine.cache_private() && self.mont_chunks.is_none() {
            let p_chunk = kernel.heap_alloc(pid, material.p_bytes().len())?;
            kernel.write_bytes(pid, p_chunk, material.p_bytes())?;
            let q_chunk = kernel.heap_alloc(pid, material.q_bytes().len())?;
            kernel.write_bytes(pid, q_chunk, material.q_bytes())?;
            self.mont_chunks = Some((p_chunk, q_chunk));
        }

        // (3) The real handshake, over the wire protocol this server speaks.
        // SSH signs the key exchange; TLS decrypts the premaster. Both run
        // genuine RSA-CRT math through the engine and must agree on keys.
        let public = self.engine.key().public_key();
        let (server_keys, client_keys) = match self.protocol {
            Protocol::Tls => {
                let (client, bundle) =
                    tls::Client::start(public, &mut self.rng).expect("client hello");
                let (server_keys, reply) = tls::accept(&mut self.engine, &bundle, &mut self.rng)
                    .expect("TLS handshake");
                (server_keys, client.finish(&reply).expect("client finish"))
            }
            Protocol::Ssh => {
                let (client, bundle) = ssh::Client::start(public, &mut self.rng);
                let (server_keys, reply) = ssh::accept(&mut self.engine, &bundle, &mut self.rng)
                    .expect("SSH key exchange");
                (server_keys, client.finish(&reply).expect("host key verifies"))
            }
        };
        assert_eq!(
            client_keys, server_keys,
            "handshake key agreement failed"
        );

        // (4) Move one sealed application record through the session buffer:
        // what lands in simulated memory is ciphertext, unique per session —
        // which is why transfer payloads never match the key scanner.
        let mut server_chan = SecureChannel::new(server_keys, wireproto::Role::Server);
        let mut client_chan = SecureChannel::new(client_keys, wireproto::Role::Client);
        let mut payload = vec![0u8; SESSION_BUF / 2];
        let head = 64.min(payload.len());
        self.rng.fill_bytes(&mut payload[..head]);
        let sealed = server_chan.seal(&payload);
        let buf = kernel.heap_alloc(pid, sealed.len())?;
        kernel.write_bytes(pid, buf, &sealed)?;
        let (opened, _) = client_chan.open(&sealed).expect("channel round trip");
        assert_eq!(opened, payload);
        // keylint: allow(S007) -- buf holds sealed ciphertext, unique per session; freeing it unzeroed leaks no key bytes
        kernel.heap_free(pid, buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyscan::Scanner;
    use memsim::MachineConfig;

    fn setup(level: ProtectionLevel) -> (Kernel, Pid, RsaPrivateKey, KeyMaterial, FileId) {
        let mut kernel = Kernel::new(MachineConfig::small().with_policy(level.kernel_policy()));
        let pid = kernel.spawn();
        let key = RsaPrivateKey::generate(256, &mut Rng64::new(55));
        let material = KeyMaterial::from_key(&key);
        let fid = kernel.create_file("/etc/key.pem", material.pem_bytes());
        (kernel, pid, key, material, fid)
    }

    #[test]
    fn scattered_load_places_d_p_q() {
        let (mut kernel, pid, _key, material, fid) = setup(ProtectionLevel::None);
        let _sk = ScatteredKey::load(&mut kernel, pid, fid, &material, false, false).unwrap();
        let scanner = Scanner::from_material(&material);
        let report = scanner.scan_kernel(&kernel);
        let counts = report.by_pattern(); // d, p, q, pem
        assert_eq!(counts[0], 1, "one d copy");
        assert_eq!(counts[1], 1, "one p copy");
        assert_eq!(counts[2], 1, "one q copy");
        // PEM: page cache + freed-but-dirty heap buffer.
        assert_eq!(counts[3], 2, "pem in cache and in freed buffer");
    }

    #[test]
    fn nocache_and_zeroed_buffer_leave_single_pem_copy_nowhere() {
        let (mut kernel, pid, _key, material, fid) = setup(ProtectionLevel::Integrated);
        let _sk = ScatteredKey::load(&mut kernel, pid, fid, &material, true, true).unwrap();
        let scanner = Scanner::from_material(&material);
        let counts = scanner.scan_kernel(&kernel).by_pattern();
        assert_eq!(counts[3], 0, "no pem copies anywhere");
    }

    #[test]
    fn zero_and_free_removes_component_copies() {
        let (mut kernel, pid, _key, material, fid) = setup(ProtectionLevel::None);
        let sk = ScatteredKey::load(&mut kernel, pid, fid, &material, true, true).unwrap();
        sk.zero_and_free(&mut kernel, pid).unwrap();
        let scanner = Scanner::from_material(&material);
        assert_eq!(scanner.scan_kernel(&kernel).total(), 0);
    }

    #[test]
    fn handshake_executes_real_crypto() {
        let (mut kernel, pid, key, material, _fid) = setup(ProtectionLevel::None);
        let mut w = WorkerCrypto::new(key, ProtectionLevel::None, 1);
        for _ in 0..3 {
            w.handshake(&mut kernel, pid, None, &material).unwrap();
        }
        assert_eq!(w.ops(), 3);
    }

    #[test]
    fn cached_handshake_adds_prime_copies_uncached_does_not() {
        let (mut kernel, pid, key, material, _fid) = setup(ProtectionLevel::None);
        let scanner = Scanner::from_material(&material);

        let mut cached = WorkerCrypto::new(key.clone_secret(), ProtectionLevel::None, 1);
        cached.handshake(&mut kernel, pid, None, &material).unwrap();
        let counts = scanner.scan_kernel(&kernel).by_pattern();
        assert_eq!(counts[1], 1, "cached engine placed a p copy");
        assert_eq!(counts[2], 1, "cached engine placed a q copy");

        // Fresh machine, protected worker.
        let (mut kernel2, pid2, _, _, _) = setup(ProtectionLevel::Application);
        let mut plain = WorkerCrypto::new(key, ProtectionLevel::Application, 1);
        plain.handshake(&mut kernel2, pid2, None, &material).unwrap();
        let counts2 = scanner.scan_kernel(&kernel2).by_pattern();
        assert_eq!(counts2[1], 0);
        assert_eq!(counts2[2], 0);
    }

    #[test]
    fn cow_poke_duplicates_shared_key_page() {
        let (mut kernel, parent, key, material, fid) = setup(ProtectionLevel::None);
        let sk = ScatteredKey::load(&mut kernel, parent, fid, &material, false, false).unwrap();
        let scanner = Scanner::from_material(&material);
        let before = scanner.scan_kernel(&kernel).by_pattern();

        let child = kernel.fork(parent).unwrap();
        let mut w = WorkerCrypto::new(key, ProtectionLevel::None, 2);
        w.handshake(&mut kernel, child, Some(sk.rsa_struct_addr()), &material)
            .unwrap();
        let after = scanner.scan_kernel(&kernel).by_pattern();
        // The COW break duplicated the page holding d/p/q, and the Montgomery
        // cache added one more p and q.
        assert!(after[0] > before[0], "d copies grew: {before:?} -> {after:?}");
        assert!(after[1] >= before[1] + 2, "p copies grew by dup + cache");
        assert!(after[2] >= before[2] + 2, "q copies grew by dup + cache");
    }
}
